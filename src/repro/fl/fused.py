"""Trial-fused execution: many trainers' rounds in one cross-trial slab.

A tuner rung (Hyperband/SHA), a random-search batch, or a grid sweep hands
``advance_many`` a set of trials that differ *only in hyperparameters* —
same dataset, same model architecture. :class:`FusedTrainerPool` exploits
that: it groups trainers by :func:`repro.nn.stacked.stack_signature` and
advances each group's rounds in lockstep, with every trial's whole cohort
occupying a contiguous row block of one ``(sum of cohorts, P)`` mega-slab.
Per-trial hyperparameters (client lr / momentum / weight decay / FedProx
mu) broadcast per slab row through the per-row vector form of
:func:`repro.nn.optim.fused_sgd_step`; per-trial batch sizes and epoch
counts just produce different row step schedules (ragged steps are
loss-masked, exactly as within a single cohort).

Equivalence is inherited from :class:`repro.fl.cohort.SlabTrainer` and is
*per trainer*: each trainer samples its cohort and pre-draws its batch
permutations from its own RNG stream in serial order, so results are
bit-identical to ``trainer.run(n)`` when no ragged padding occurs and
~1e-15/round otherwise, with identical RNG end states. A trial whose round
diverges (non-finite client loss) is rerun serially from its RNG snapshots
— exact serial semantics — without disturbing the other trials' rows.

The pool is deliberately trainer-shaped rather than trial-shaped so that
both :meth:`repro.core.evaluator.FederatedTrialRunner.advance_many`
(``cohort_mode="fused"``) and :meth:`repro.experiments.bank.ConfigBank.build`
can drive it.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.backend import resolve_dtype
from repro.fl.cohort import SlabGroup, SlabTrainer
from repro.fl.evaluation import StackedEvalEngine, fused_group_rates
from repro.fl.trainer import FederatedTrainer
from repro.nn.stacked import (
    STACKED_LOSSES,
    StackedModel,
    collect_dropout_rngs,
    stack_signature,
)


class FusedTrainerPool:
    """Advances batches of :class:`~repro.fl.trainer.FederatedTrainer`\\ s
    in cross-trial lockstep, one shared :class:`SlabTrainer` per model
    architecture (slabs are cached across calls, so successive rungs of a
    tuning run reuse one allocation). :meth:`evaluate` is the matching
    read path: every trainer of a batch is scored on the validation pool
    through one inference slab — borrowing the training slab the batch
    just used, so a train→evaluate rung cycle never unstacks and restacks
    parameters.

    ``dtype`` is the pool's default slab compute dtype
    (:func:`repro.nn.backend.resolve_dtype`); each group's slab is built
    in its trainers' own ``cohort_dtype``, and the dtype name joins the
    grouping key so mixed-precision batches never share a slab.
    """

    def __init__(self, dtype=None) -> None:
        self.dtype = resolve_dtype(dtype)
        self._slabs: Dict[tuple, SlabTrainer] = {}
        self._eval_engine: Optional[StackedEvalEngine] = None

    def stacked_model(self, key: tuple, rows: int, dtype=None) -> Optional[StackedModel]:
        """The training slab's model for ``key`` when it can already hold
        ``rows`` copies (else ``None``) — the borrow handle fused
        evaluation uses. ``key`` is the ``(stack_signature, loss_fn)``
        pair of :meth:`advance`'s grouping key; the dtype completing the
        full slab key defaults to the pool's."""
        full_key = key + (np.dtype(dtype if dtype is not None else self.dtype).name,)
        slab = self._slabs.get(full_key)
        if slab is not None and slab.capacity >= rows:
            return slab.stacked_model
        return None

    def evaluate(self, trainers: Sequence[FederatedTrainer]) -> List[np.ndarray]:
        """Per-validation-client error rates for every trainer, fused.

        Same-architecture trainers (grouped by
        :func:`~repro.nn.stacked.eval_stack_signature`, which ignores
        training-only concerns such as Dropout RNG wiring) evaluate as one
        stacked inference sweep over the pool's cached chunk plan;
        singleton groups and unstackable models use the serial
        :meth:`~repro.fl.trainer.FederatedTrainer.eval_error_rates`.
        Per trainer the result is bit-identical to the serial call.
        """
        results: List[Optional[np.ndarray]] = [None] * len(trainers)
        by_dataset: Dict[int, List[int]] = {}
        for i, trainer in enumerate(trainers):
            by_dataset.setdefault(id(trainer.dataset), []).append(i)
        for members in by_dataset.values():
            dataset = trainers[members[0]].dataset
            if self._eval_engine is None:
                self._eval_engine = StackedEvalEngine(dtype=self.dtype)
            rates = fused_group_rates(
                self._eval_engine,
                [trainers[i].model for i in members],
                [trainers[i].params for i in members],
                dataset.eval_clients,
                dataset.task,
                pool=self,
            )
            for row, i in zip(rates, members):
                results[i] = row
        for i, row in enumerate(results):
            if row is None:
                results[i] = trainers[i].eval_error_rates()
        return results

    # -- public API ----------------------------------------------------------
    def advance(self, trainers: Sequence[FederatedTrainer], rounds: Sequence[int]) -> None:
        """Advance ``trainers[i]`` by ``rounds[i]`` rounds, fusing where possible.

        Trainers are grouped by architecture signature; each group of two
        or more trains as one slab. Singleton groups and trainers without
        stacked kernels run their own ``run`` (which is itself vectorized
        when the model allows).
        """
        if len(trainers) != len(rounds):
            raise ValueError(f"{len(trainers)} trainers but {len(rounds)} round counts")
        for r in rounds:
            if r < 0:
                raise ValueError(f"rounds must be >= 0, got {r}")
        groups: Dict[tuple, List[int]] = {}
        solo: List[int] = []
        for i, trainer in enumerate(trainers):
            signature = stack_signature(trainer.model)
            if signature is None or trainer.dataset.task.loss_fn not in STACKED_LOSSES:
                solo.append(i)
                continue
            dtype_name = np.dtype(
                getattr(trainer, "cohort_dtype", self.dtype)
            ).name
            groups.setdefault(
                (signature, trainer.dataset.task.loss_fn, dtype_name), []
            ).append(i)
        for key, members in groups.items():
            if len(members) == 1:
                solo.extend(members)
                continue
            self._advance_group(
                [trainers[i] for i in members], [rounds[i] for i in members], key
            )
        for i in solo:
            trainers[i].run(rounds[i])

    # -- internals -----------------------------------------------------------
    @staticmethod
    def _trainer_names(trainers: Sequence[FederatedTrainer]) -> str:
        """Human-readable trial names for degradation warnings (the fault
        key is the trial id when a runner attached one)."""
        return ", ".join(
            str(t.fault_key) if t.fault_key is not None else f"#{i}"
            for i, t in enumerate(trainers)
        )

    def _advance_group(
        self, trainers: List[FederatedTrainer], rounds: List[int], key: tuple
    ) -> None:
        slab = self._slabs.get(key)
        if slab is None:
            try:
                slab = SlabTrainer(
                    trainers[0].dataset.task,
                    trainers[0].model,
                    sum(t.clients_per_round for t in trainers),
                    dtype=getattr(trainers[0], "cohort_dtype", self.dtype),
                )
            except Exception as exc:
                # First degradation step: no cross-trial slab, but each
                # trainer still runs its own (vectorized-where-possible)
                # rounds. No training happened yet, so this is exact.
                warnings.warn(
                    f"fused slab unavailable for trials "
                    f"[{self._trainer_names(trainers)}]: {exc!r}; degrading "
                    "group to per-trainer rounds",
                    RuntimeWarning,
                    stacklevel=3,
                )
                for trainer, r in zip(trainers, rounds):
                    trainer.run(r)
                return
            self._slabs[key] = slab
        remaining = list(rounds)
        while True:
            active = [i for i, r in enumerate(remaining) if r > 0]
            if not active:
                return
            self._run_fused_round([trainers[i] for i in active], slab)
            for i in active:
                remaining[i] -= 1

    def _run_fused_round(self, trainers: List[FederatedTrainer], slab: SlabTrainer) -> None:
        """One lockstep communication round across every given trainer.

        Mirrors :meth:`FederatedTrainer.run_round` phase for phase, per
        trainer: sample cohort -> local training (fused here) -> aggregate
        + server step, with the serial rerun fallback on divergence.
        """
        cohorts = []
        snapshots: List[Tuple] = []
        groups: List[SlabGroup] = []
        rng_lists: List[list] = []
        for trainer in trainers:
            cohort = trainer._sample_cohort()
            # Snapshot after the cohort draw (a serial rerun reuses the
            # cohort) but before the permutation pre-draw, which the rerun
            # repeats client by client.
            drngs = collect_dropout_rngs(trainer.model)
            snapshots.append(
                (
                    trainer._rng.bit_generator.state,
                    [r.bit_generator.state for r in drngs],
                )
            )
            clients = [trainer.dataset.train_clients[k] for k in cohort]
            local = trainer.local
            perms = [
                [trainer._rng.permutation(c.n) for _ in range(local.epochs)] for c in clients
            ]
            cohorts.append(cohort)
            rng_lists.append(drngs)
            groups.append(
                SlabGroup(
                    start=trainer.params,
                    clients=clients,
                    perms=perms,
                    lr=local.lr,
                    momentum=local.momentum,
                    weight_decay=local.weight_decay,
                    prox_mu=local.prox_mu,
                    batch_size=local.batch_size,
                    epochs=local.epochs,
                    dropout_rngs=drngs,
                )
            )
        outs = [trainer._updates for trainer in trainers]
        try:
            succeeded = slab.train_groups(groups, outs)
        except Exception as exc:
            # Second degradation step: the slab pass itself blew up. Every
            # trainer still holds its post-sample RNG snapshot, so marking
            # the whole round as failed reruns it through the exact serial
            # divergence-fallback path below — same results the slab would
            # have produced, one warning naming the degraded trials.
            warnings.warn(
                f"fused round failed for trials "
                f"[{self._trainer_names(trainers)}]: {exc!r}; rerunning the "
                "round serially per trainer",
                RuntimeWarning,
                stacklevel=4,
            )
            succeeded = [False] * len(trainers)
        for trainer, cohort, snapshot, drngs, ok in zip(
            trainers, cohorts, snapshots, rng_lists, succeeded
        ):
            if not ok:
                # Exact serial fallback for the diverged trial only: rewind
                # its generators to the post-sample state and replay the
                # round through the serial per-client path.
                trainer._rng.bit_generator.state = snapshot[0]
                for r, state in zip(drngs, snapshot[1]):
                    r.bit_generator.state = state
                trainer._train_cohort_serial(cohort, trainer._updates)
            trainer._finish_round(cohort, trainer._updates)
