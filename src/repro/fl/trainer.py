"""The federated training loop (Algorithm 2 of the paper).

Each round: sample a client cohort uniformly without replacement, run local
SGD on each client from the current global parameters, aggregate the
weighted average of the resulting parameters, and apply the server
optimizer to the pseudo-gradient ``w - avg``.

:class:`FederatedTrainer` is resumable — ``run(n)`` advances ``n`` rounds
from wherever training stopped — which is what successive-halving tuners
need to continue promising configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.datasets.base import FederatedDataset
from repro.fl.client import ClientTrainer
from repro.nn.backend import resolve_dtype
from repro.fl.cohort import CohortTrainer, resolve_cohort_mode
from repro.fl.evaluation import client_error_rates, evaluate_model
from repro.fl.sampling import UniformSampler
from repro.fl.server import ServerOptimizer
from repro.nn.module import Module, get_flat_params, set_flat_params
from repro.utils.rng import SeedLike, as_rng


@dataclass(frozen=True)
class LocalTrainingConfig:
    """Client-side hyperparameters (paper Appendix B).

    ``prox_mu`` enables the FedProx proximal term (Li et al., 2020); the
    paper's experiments use plain local SGD (``prox_mu = 0``).
    """

    lr: float
    momentum: float = 0.0
    weight_decay: float = 5e-5
    batch_size: int = 32
    epochs: int = 1
    prox_mu: float = 0.0

    def __post_init__(self) -> None:
        if self.lr <= 0:
            raise ValueError(f"client lr must be positive, got {self.lr}")
        if not 0.0 <= self.momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {self.momentum}")
        if self.weight_decay < 0:
            raise ValueError(f"weight_decay must be >= 0, got {self.weight_decay}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")
        if self.prox_mu < 0:
            raise ValueError(f"prox_mu must be >= 0, got {self.prox_mu}")


class FederatedTrainer:
    """Trains one model on one federated dataset under fixed hyperparameters.

    Parameters
    ----------
    dataset : the federated dataset (train pool is used here).
    server_opt : a :class:`ServerOptimizer` (its HPs are part of the config).
    local : client-side hyperparameters.
    clients_per_round : cohort size per round (paper: 10, uniform).
    scheme : "weighted" (by example count) or "uniform" client aggregation,
        matching the evaluation weighting per the paper's footnote 1.
    seed : controls model init, cohort sampling, and local batch order.
    cohort_mode : "vectorized" trains the round's whole cohort in lockstep
        on stacked parameter slabs (see :mod:`repro.fl.cohort`); "serial"
        trains clients one at a time; "fused" additionally lets a
        :class:`repro.fl.fused.FusedTrainerPool` (via the trial runners'
        ``advance_many``) merge this trainer's rounds into a cross-trial
        slab — a standalone ``run_round`` behaves exactly like
        "vectorized". ``None`` resolves from ``$REPRO_COHORT_VECTOR``
        (default serial). Models without stacked kernels and rounds with
        diverging clients automatically fall back to the serial path;
        ``cohort_mode_effective`` reports the path actually in use.
    cohort_dtype : slab compute dtype for the vectorized/fused paths
        (:func:`repro.nn.backend.resolve_dtype`; ``None`` resolves
        ``$REPRO_DTYPE``, default float64). float32 halves slab memory at
        a documented per-round tolerance vs the float64 reference. Global
        parameters, aggregation, the server optimizer, and the serial
        path (including the divergence fallback) stay float64 always.
    """

    def __init__(
        self,
        dataset: FederatedDataset,
        server_opt: ServerOptimizer,
        local: LocalTrainingConfig,
        clients_per_round: int = 10,
        scheme: str = "weighted",
        seed: SeedLike = 0,
        cohort_mode: Optional[str] = None,
        cohort_dtype=None,
    ):
        if clients_per_round < 1:
            raise ValueError(f"clients_per_round must be >= 1, got {clients_per_round}")
        self.dataset = dataset
        self.server_opt = server_opt
        self.local = local
        self.clients_per_round = min(clients_per_round, dataset.num_train_clients)
        self.scheme = scheme
        self._rng = as_rng(seed)
        # Model init must be deterministic in the seed: derive an init seed
        # from the sampling stream.
        init_seed = int(self._rng.integers(0, 2**63 - 1))
        self.model: Module = dataset.task.build_model(init_seed)
        self.params: np.ndarray = get_flat_params(self.model)
        self._sampler = UniformSampler(dataset.num_train_clients)
        self._client_trainer = ClientTrainer(
            dataset.task,
            lr=local.lr,
            momentum=local.momentum,
            weight_decay=local.weight_decay,
            batch_size=local.batch_size,
            epochs=local.epochs,
            prox_mu=local.prox_mu,
        )
        self._train_weights = dataset.train_weights(scheme)
        self.rounds_completed = 0
        # Fault injection (repro.engine.faults), attached post-construction
        # via set_fault_plan so construction sites stay untouched. With no
        # plan (or a plan with zero client-fault rates) every fault branch
        # below is dead and training is bit-identical to a faultless build.
        self.faults = None
        self.fault_key = None
        self.participation = None
        self.cohort_mode = resolve_cohort_mode(cohort_mode)
        self.cohort_dtype = resolve_dtype(cohort_dtype)
        # The per-trainer slab is built lazily on the first standalone
        # round: trials advanced through the fused pool never touch it, so
        # a fused rung does not pay one (C, P) slab per trial.
        self._cohort_capable = self.cohort_mode in (
            "vectorized",
            "fused",
        ) and CohortTrainer.supports(dataset.task, self.model)
        self._cohort_trainer = None
        # Aggregation scratch, reused every round: the (cohort, P) client
        # updates, their weighted copy, and the averaged parameters.
        self._updates = np.empty((self.clients_per_round, self.params.size))
        self._weighted = np.empty_like(self._updates)
        self._avg = np.empty(self.params.size)

    @property
    def cohort_mode_effective(self) -> str:
        """The training path in use ("vectorized"/"fused" fall back to
        "serial" for model families without stacked kernels; a "fused"
        trainer running standalone rounds reports "vectorized")."""
        return "vectorized" if self._cohort_capable else "serial"

    # -- round phases --------------------------------------------------------
    # run_round composes three hooks so the fused trainer pool
    # (repro.fl.fused) can interleave many trainers' rounds: sample the
    # cohort, produce per-client updates (lockstep or serial), aggregate.
    def _sample_cohort(self) -> np.ndarray:
        """Draw this round's client cohort from the shared trainer RNG."""
        return self._sampler.sample(self.clients_per_round, self._rng)

    def _train_cohort_serial(self, cohort: np.ndarray, updates: np.ndarray) -> None:
        """The serial per-client reference path (and divergence fallback)."""
        for i, k in enumerate(cohort):
            updates[i] = self._client_trainer.train(
                self.model, self.params, self.dataset.train_clients[k], self._rng
            )

    def _finish_round(self, cohort: np.ndarray, updates: np.ndarray) -> None:
        """Aggregate client updates and apply the server optimizer.

        With a fault plan attached, dropped clients are excluded *here* —
        their updates were computed but never reported — so every RNG
        stream advances exactly as in the fault-free run and the serial,
        vectorized, and fused paths inject identical faults. A round whose
        survivors miss the quorum is lost (global model frozen for that
        round, like the divergence convention).
        """
        if self.faults is not None and self.faults.injects_client_faults:
            cohort, updates, proceed = self._apply_round_faults(cohort, updates)
            if not proceed:
                self.rounds_completed += 1
                return
        weights = self._train_weights[cohort]
        if updates.shape[0] == self._weighted.shape[0]:
            # Weighted average with reused buffers; elementwise-multiply +
            # axis sum + divide is bit-identical to the np.average it
            # replaces.
            np.multiply(updates, weights[:, None], out=self._weighted)
            np.sum(self._weighted, axis=0, out=self._avg)
            self._avg /= weights.sum()
            avg = self._avg
        else:
            # Survivor subset after dropout: too small for the scratch
            # buffers, so aggregate out of place (fault path only).
            avg = (updates * weights[:, None]).sum(axis=0) / weights.sum()
        pseudo_grad = self.params - avg
        if not np.all(np.isfinite(pseudo_grad)):
            # A client diverged under this config. Freeze the global model:
            # the config will evaluate poorly, which is the correct signal.
            self.rounds_completed += 1
            return
        self.params = self.server_opt.step(self.params, pseudo_grad)
        self.rounds_completed += 1

    def _apply_round_faults(self, cohort: np.ndarray, updates: np.ndarray):
        """Drop/straggle this round's cohort per the attached fault plan.

        Returns ``(survivor_cohort, survivor_updates, proceed)`` —
        ``proceed`` is False when the survivors miss the quorum and the
        round is lost. Stragglers still report (aggregation unchanged, so
        a straggler-only plan leaves trajectories bit-identical to the
        fault-free run); they only grow this round's simulated wall-clock
        delay and the participation counters.
        """
        plan = self.faults
        round_index = self.rounds_completed
        drop = plan.dropout_mask(self.fault_key, round_index, cohort)
        straggle = plan.straggler_mask(self.fault_key, round_index, cohort)
        survivors = ~drop
        reporting_stragglers = straggle & survivors
        lost = int(survivors.sum()) < plan.min_reporters(len(cohort))
        delay = 0.0
        if not lost and reporting_stragglers.any():
            # The server waits out its slowest reporter.
            delay = plan.config.straggler_delay
        if self.participation is not None:
            self.participation.record_round(
                cohort,
                dropped=cohort[drop],
                straggled=cohort[reporting_stragglers],
                lost=lost,
                delay=delay,
            )
        if lost:
            return cohort, updates, False
        if not drop.any():
            return cohort, updates, True
        return cohort[survivors], updates[survivors], True

    def run_round(self) -> None:
        """One communication round (the inner loop of Algorithm 2)."""
        cohort = self._sample_cohort()
        updates = self._updates
        trained = False
        if self._cohort_capable and self._cohort_trainer is None:
            local = self.local
            self._cohort_trainer = CohortTrainer(
                self.dataset.task,
                self.model,
                self.clients_per_round,
                lr=local.lr,
                momentum=local.momentum,
                weight_decay=local.weight_decay,
                batch_size=local.batch_size,
                epochs=local.epochs,
                prox_mu=local.prox_mu,
                dtype=self.cohort_dtype,
            )
        if self._cohort_trainer is not None:
            trained = self._cohort_trainer.train_cohort(
                self.params,
                [self.dataset.train_clients[k] for k in cohort],
                self._rng,
                out=updates,
            )
        if not trained:
            self._train_cohort_serial(cohort, updates)
        self._finish_round(cohort, updates)

    def run(self, n_rounds: int) -> "FederatedTrainer":
        """Advance ``n_rounds`` more rounds; returns self for chaining."""
        if n_rounds < 0:
            raise ValueError(f"n_rounds must be >= 0, got {n_rounds}")
        for _ in range(n_rounds):
            self.run_round()
        return self

    # -- mid-run hyperparameter edits ----------------------------------------
    def set_local_config(self, local: LocalTrainingConfig) -> None:
        """Swap the client-side hyperparameters for all *future* rounds.

        Population-based tuners perturb a live trial's client lr /
        momentum / weight decay between training steps (FedPop's explore
        move). Every cached executor of the old values is refreshed so the
        serial, vectorized, and fused paths all see the new config from
        the next round on: the serial :class:`ClientTrainer` is rebuilt,
        the lazily-built per-trainer cohort slab is dropped (rebuilt on
        the next standalone round), and the fused pool needs nothing —
        it reads ``self.local`` fresh every round. Training state (params,
        RNG streams, server-optimizer moments, round count) is untouched.
        """
        if local.batch_size != self.local.batch_size or local.epochs != self.local.epochs:
            # Not a correctness limit — just out of scope: the paper-space
            # perturbations touch the three SGD knobs only, and keeping
            # the local step schedule fixed preserves the uniform-schedule
            # fast path across a population slab.
            raise ValueError(
                "set_local_config only swaps lr/momentum/weight_decay/prox_mu; "
                f"batch_size/epochs must stay "
                f"({self.local.batch_size}, {self.local.epochs})"
            )
        self.local = local
        self._client_trainer = ClientTrainer(
            self.dataset.task,
            lr=local.lr,
            momentum=local.momentum,
            weight_decay=local.weight_decay,
            batch_size=local.batch_size,
            epochs=local.epochs,
            prox_mu=local.prox_mu,
        )
        self._cohort_trainer = None

    # -- fault injection -----------------------------------------------------
    def set_fault_plan(self, plan, key) -> None:
        """Attach a :class:`repro.engine.faults.FaultPlan` to this trainer.

        ``key`` identifies the trainer inside the plan's deterministic
        coordinate space (trial runners pass the trial id), so each
        trainer draws its own fault stream regardless of execution order.
        Passing ``plan=None`` detaches injection.
        """
        self.faults = plan
        self.fault_key = key
        if plan is not None and plan.injects_client_faults and self.participation is None:
            from repro.engine.faults import ParticipationLog

            self.participation = ParticipationLog(self.dataset.num_train_clients)

    @property
    def simulated_time(self) -> float:
        """Simulated wall-clock cost of training so far (1 unit per round
        plus straggler delays); 0.0 until client faults are injected."""
        if self.participation is None:
            return 0.0
        return self.participation.simulated_time

    # -- state transport ----------------------------------------------------
    def state_dict(self) -> dict:
        """All mutable training state, as plain picklable data.

        Everything a resumed :meth:`run` depends on flows from these
        pieces (the model itself is a pure function of ``params``), so
        loading them into an identically-constructed trainer continues
        training bit-identically — the contract the parallel engine's
        worker round-trip relies on. ``dropout_rngs`` carries the model's
        per-layer Dropout generator states: those streams advance during
        training, and a worker round-trip that dropped them would leave
        the parent's Dropout draws stale for the next batch.
        """
        from repro.nn.stacked import collect_dropout_rngs

        state = {
            "params": self.params.copy(),
            "rng_state": self._rng.bit_generator.state,
            "server_opt": self.server_opt.state_dict(),
            "rounds_completed": self.rounds_completed,
            "dropout_rngs": [
                r.bit_generator.state for r in collect_dropout_rngs(self.model)
            ],
        }
        if self.participation is not None:
            # Realized-participation counters ride the same round trip as
            # the RNG streams, so worker advances and checkpoint resumes
            # keep the fault bookkeeping exact.
            state["participation"] = self.participation.state_dict()
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        from repro.nn.stacked import collect_dropout_rngs

        self.params = np.asarray(state["params"], dtype=np.float64).copy()
        self._rng.bit_generator.state = state["rng_state"]
        self.server_opt.load_state_dict(state["server_opt"])
        self.rounds_completed = int(state["rounds_completed"])
        dropout_states = state.get("dropout_rngs")
        if dropout_states is not None:
            for rng, rng_state in zip(collect_dropout_rngs(self.model), dropout_states):
                rng.bit_generator.state = rng_state
        participation = state.get("participation")
        if participation is not None:
            if self.participation is None:
                from repro.engine.faults import ParticipationLog

                self.participation = ParticipationLog(self.dataset.num_train_clients)
            self.participation.load_state_dict(participation)

    # -- evaluation conveniences --------------------------------------------
    def eval_error_rates(self, max_chunk_examples: int = 4096) -> np.ndarray:
        """Per-validation-client error rates of the current global model.

        This is the serial reference path: chunked batched forwards over
        the pool's cached :class:`~repro.fl.evaluation.EvalChunkPlan`
        (shared with the stacked engine, so serial and fused evaluation
        see identical chunk boundaries). Batch callers — tuner rungs, bank
        snapshots — should prefer ``TrialRunner.error_rates_many`` /
        ``FusedTrainerPool.evaluate``, which score many same-architecture
        trainers through one inference slab.
        """
        set_flat_params(self.model, self.params)
        return client_error_rates(
            self.model,
            self.dataset.eval_clients,
            self.dataset.task,
            max_chunk_examples=max_chunk_examples,
        )

    def full_validation_error(self, scheme: Optional[str] = None) -> float:
        """Full-pool validation error (Eq. 2 with S = [N_val])."""
        return evaluate_model(
            self.model,
            self.dataset,
            params=self.params,
            subset=None,
            scheme=scheme or self.scheme,
        )
