"""Client samplers: uniform and systems-heterogeneity-biased selection.

The paper samples clients *uniformly without replacement* for training and
evaluation (§2.1), and models systems heterogeneity (§3.2) by biasing
evaluation sampling towards clients on which the current model performs
well: client k gets selection weight ``(a_k + δ)^b`` where ``a_k`` is its
accuracy, δ = 1e-4 keeps weights positive, and ``b`` controls bias strength
(b = 0 recovers uniform sampling).
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, as_rng


class UniformSampler:
    """Sample ``size`` client indices uniformly without replacement."""

    def __init__(self, n_clients: int):
        if n_clients < 1:
            raise ValueError(f"n_clients must be >= 1, got {n_clients}")
        self.n_clients = n_clients

    def sample(self, size: int, rng: SeedLike = None) -> np.ndarray:
        if not 1 <= size <= self.n_clients:
            raise ValueError(f"size must be in [1, {self.n_clients}], got {size}")
        rng = as_rng(rng)
        return rng.choice(self.n_clients, size=size, replace=False)


def biased_weights(accuracies: np.ndarray, b: float, delta: float = 1e-4) -> np.ndarray:
    """Selection probabilities ``(a_k + δ)^b`` normalised to sum to 1."""
    accuracies = np.asarray(accuracies, dtype=np.float64)
    if np.any(accuracies < 0) or np.any(accuracies > 1):
        raise ValueError("accuracies must lie in [0, 1]")
    if b < 0:
        raise ValueError(f"bias exponent b must be >= 0, got {b}")
    w = (accuracies + delta) ** b
    return w / w.sum()


class BiasedSampler:
    """Accuracy-biased sampling without replacement (systems heterogeneity).

    Uses the Gumbel top-k trick for weighted sampling without replacement:
    perturb log-weights with Gumbel noise and take the top ``size`` — an
    exact sampler for the successive-draws-without-replacement model.

    ``availability`` optionally composes a second per-client weight vector
    into the selection probabilities — typically the *realized* report
    rates measured by a :class:`repro.engine.faults.ParticipationLog`
    (``log.availability_weights()``), so empirically-observed dropout
    biases sampling the same multiplicative way the paper's static
    ``(a_k + δ)^b`` model does. ``None`` (the default) leaves the sampler
    bit-identical to its availability-free behavior.
    """

    def __init__(self, b: float, delta: float = 1e-4, availability=None):
        if b < 0:
            raise ValueError(f"bias exponent b must be >= 0, got {b}")
        self.b = b
        self.delta = delta
        if availability is not None:
            availability = np.asarray(availability, dtype=np.float64)
            if np.any(availability < 0) or not np.any(availability > 0):
                raise ValueError("availability weights must be >= 0 with a positive sum")
        self.availability = availability

    def sample(
        self, accuracies: np.ndarray, size: int, rng: SeedLike = None
    ) -> np.ndarray:
        accuracies = np.asarray(accuracies, dtype=np.float64)
        n = accuracies.size
        if not 1 <= size <= n:
            raise ValueError(f"size must be in [1, {n}], got {size}")
        rng = as_rng(rng)
        if self.b == 0.0 and self.availability is None:
            return rng.choice(n, size=size, replace=False)
        if self.b == 0.0:
            probs = np.full(n, 1.0 / n)
        else:
            probs = biased_weights(accuracies, self.b, self.delta)
        if self.availability is not None:
            if self.availability.size != n:
                raise ValueError(
                    f"availability has {self.availability.size} clients, "
                    f"accuracies have {n}"
                )
            probs = probs * self.availability
            probs = probs / probs.sum()
        gumbel = rng.gumbel(size=n)
        with np.errstate(divide="ignore"):
            # Zero-probability clients (never-available) get -inf keys and
            # are only drawn when size exceeds the available pool.
            keys = np.log(probs) + gumbel
        return np.argpartition(-keys, size - 1)[:size]
