"""Client samplers: uniform and systems-heterogeneity-biased selection.

The paper samples clients *uniformly without replacement* for training and
evaluation (§2.1), and models systems heterogeneity (§3.2) by biasing
evaluation sampling towards clients on which the current model performs
well: client k gets selection weight ``(a_k + δ)^b`` where ``a_k`` is its
accuracy, δ = 1e-4 keeps weights positive, and ``b`` controls bias strength
(b = 0 recovers uniform sampling).
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, as_rng


class UniformSampler:
    """Sample ``size`` client indices uniformly without replacement."""

    def __init__(self, n_clients: int):
        if n_clients < 1:
            raise ValueError(f"n_clients must be >= 1, got {n_clients}")
        self.n_clients = n_clients

    def sample(self, size: int, rng: SeedLike = None) -> np.ndarray:
        if not 1 <= size <= self.n_clients:
            raise ValueError(f"size must be in [1, {self.n_clients}], got {size}")
        rng = as_rng(rng)
        return rng.choice(self.n_clients, size=size, replace=False)


def biased_weights(accuracies: np.ndarray, b: float, delta: float = 1e-4) -> np.ndarray:
    """Selection probabilities ``(a_k + δ)^b`` normalised to sum to 1."""
    accuracies = np.asarray(accuracies, dtype=np.float64)
    if np.any(accuracies < 0) or np.any(accuracies > 1):
        raise ValueError("accuracies must lie in [0, 1]")
    if b < 0:
        raise ValueError(f"bias exponent b must be >= 0, got {b}")
    w = (accuracies + delta) ** b
    return w / w.sum()


class BiasedSampler:
    """Accuracy-biased sampling without replacement (systems heterogeneity).

    Uses the Gumbel top-k trick for weighted sampling without replacement:
    perturb log-weights with Gumbel noise and take the top ``size`` — an
    exact sampler for the successive-draws-without-replacement model.
    """

    def __init__(self, b: float, delta: float = 1e-4):
        if b < 0:
            raise ValueError(f"bias exponent b must be >= 0, got {b}")
        self.b = b
        self.delta = delta

    def sample(
        self, accuracies: np.ndarray, size: int, rng: SeedLike = None
    ) -> np.ndarray:
        accuracies = np.asarray(accuracies, dtype=np.float64)
        n = accuracies.size
        if not 1 <= size <= n:
            raise ValueError(f"size must be in [1, {n}], got {size}")
        rng = as_rng(rng)
        if self.b == 0.0:
            return rng.choice(n, size=size, replace=False)
        probs = biased_weights(accuracies, self.b, self.delta)
        gumbel = rng.gumbel(size=n)
        keys = np.log(probs) + gumbel
        return np.argpartition(-keys, size - 1)[:size]
