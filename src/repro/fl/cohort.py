"""Vectorized cohort training: slab-agnostic lockstep SGD over client rows.

:class:`repro.fl.trainer.FederatedTrainer.run_round` historically trained
its cohort one client at a time through :class:`~repro.fl.client.ClientTrainer`
— hundreds of small-array layer calls per round. This module replaces that
loop with lockstep SGD over a :class:`~repro.nn.stacked.StackedModel`: every
participating client's parameters live in one ``(R, P)`` slab, every local
step is one batched forward/backward over an ``(R, B, ...)`` stacked batch,
and the optimizer update is one fused whole-slab call
(:func:`repro.nn.optim.fused_sgd_step`).

The compute core, :class:`SlabTrainer`, is *slab-agnostic*: it trains a
list of :class:`SlabGroup` row groups, where each group carries its own
round-start parameters and hyperparameters (lr / momentum / weight decay /
FedProx mu broadcast per slab row via the per-row vector form of
:func:`~repro.nn.optim.fused_sgd_step`). Two callers share it:

- :class:`CohortTrainer` — one group: a single trainer's cohort, the PR 2
  execution mode (``cohort_mode="vectorized"``).
- :class:`repro.fl.fused.FusedTrainerPool` — many groups: one per trial of
  a tuner rung, fusing a whole ``advance_many`` batch into a ``(T*C, P)``
  mega-slab (``cohort_mode="fused"``).

Equivalence contract (asserted in ``tests/fl/test_cohort.py`` and
``tests/fl/test_fused.py``):

- **RNG stream.** Batch permutations are pre-drawn from the shared trainer
  RNG in exactly the order the serial loop draws them (client by client,
  epoch by epoch), and Dropout masks are pre-drawn from each layer's own
  generator in serial visit order (:class:`~repro.nn.stacked.StackedDropout`).
  When a model's Dropout layers share one generator object, the whole
  round's masks are instead drawn eagerly in the serial *interleaved*
  order — client, step, layer in forward order — and installed per layer
  (:meth:`SlabTrainer._predraw_interleaved`). Either way every
  generator's end state is identical to the serial path's.
- **Trajectories.** Per-step, per-client math matches the serial
  :class:`~repro.fl.client.ClientTrainer` kernel for kernel. When every
  active row's batch at a lockstep step has equal size (no padding),
  the round is bit-identical to serial; ragged steps pad short batches
  with loss-masked copies of a real row, which leaves gradient *sums*
  unchanged and perturbs only per-client reduction order (~1e-15
  relative per round; tests assert rtol=1e-8 over few-round windows).
- **Fallback.** A client producing a non-finite loss mid-round fails *its
  group only*: the group's rows keep occupying the slab (row math is
  independent, so neighbours are unaffected bit-for-bit) but its results
  are discarded, and the caller reruns that trainer's round serially after
  restoring its RNG snapshots — reproducing serial semantics exactly
  (including the diverged client's early stop and its effect on later
  draws). When *every* group has failed the attempt aborts early, which
  for the single-group :class:`CohortTrainer` is the PR 2 behavior.

Rows are processed sorted by local step count (stable descending), so
finished clients retire from a shrinking *prefix* of the slab — ragged
cohorts never pay masked no-op steps.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.nn.backend import resolve_dtype
from repro.nn.backend import xp as np
from repro.datasets.base import ClientData, TaskSpec
from repro.nn.module import Module
from repro.nn.optim import fused_sgd_step
from repro.nn.stacked import (
    STACKED_LOSSES,
    StackedDropout,
    StackedModel,
    collect_dropout_rngs,
    supports_stacking,
)

#: Environment switch for the default cohort mode. Accepted values:
#: falsy ("", "0", "false", "no", "off") or "serial" -> serial;
#: truthy ("1", "true", "yes", "on") or "vectorized" -> vectorized;
#: "fused" -> fused. Anything else is an error (not a silent fallback).
COHORT_VECTOR_ENV = "REPRO_COHORT_VECTOR"

COHORT_MODES = ("serial", "vectorized", "fused")

_ENV_SERIAL = ("", "0", "false", "no", "off", "serial")
_ENV_VECTORIZED = ("1", "true", "yes", "on", "vectorized")


def resolve_cohort_mode(mode: Optional[str] = None) -> str:
    """Resolve an explicit or environment-provided cohort mode.

    ``None`` consults ``$REPRO_COHORT_VECTOR`` (unset/falsy -> "serial",
    so vectorization is opt-in, like ``REPRO_WORKERS``/``REPRO_BANK_CACHE``).
    Unknown values — explicit or from the environment — raise instead of
    silently degrading to serial.
    """
    if mode is None:
        raw = os.environ.get(COHORT_VECTOR_ENV, "").strip().lower()
        if raw in _ENV_SERIAL:
            return "serial"
        if raw in _ENV_VECTORIZED:
            return "vectorized"
        if raw == "fused":
            return "fused"
        raise ValueError(
            f"${COHORT_VECTOR_ENV} must be one of {COHORT_MODES} or a boolean "
            f"flag ('1'/'0', 'true'/'false', 'yes'/'no', 'on'/'off'), got {raw!r}"
        )
    if mode not in COHORT_MODES:
        raise ValueError(f"cohort_mode must be one of {COHORT_MODES}, got {mode!r}")
    return mode


@dataclass
class SlabGroup:
    """One row group of a lockstep slab: a trainer's cohort for one round.

    ``start`` is the group's round-start global parameter vector (every row
    initializes from it, and FedProx anchors to it). ``perms`` are the
    pre-drawn batch permutations, ``perms[i][e]`` for client ``i`` epoch
    ``e``, drawn by the caller from the owning trainer's RNG in serial
    order. ``dropout_rngs`` are the owning *template model's* active
    Dropout generators (see :func:`repro.nn.stacked.collect_dropout_rngs`),
    one per active Dropout layer, so fused groups draw their masks from
    their own trainers' streams.
    """

    start: np.ndarray
    clients: Sequence[ClientData]
    perms: Sequence[Sequence[np.ndarray]]
    lr: float
    momentum: float = 0.0
    weight_decay: float = 0.0
    prox_mu: float = 0.0
    batch_size: int = 32
    epochs: int = 1
    dropout_rngs: Sequence[np.random.Generator] = field(default_factory=tuple)


class SlabTrainer:
    """Slab-agnostic lockstep local SGD over row groups.

    One instance is reused across rounds (and, for the fused runner,
    across trials): the stacked model, its slab, the velocity buffer, and
    the batch-assembly buffers are allocated once and grown on demand via
    :meth:`ensure_capacity`.

    ``dtype`` is the slab compute dtype
    (:func:`repro.nn.backend.resolve_dtype`): float64 (default) is the
    bit-exact serial reference; float32 halves slab memory and also pulls
    floating batch data down to float32 so no kernel silently upcasts
    mid-pipeline. RNG pre-draws (permutations, Dropout masks) always
    consume the generators' native float64 stream regardless, preserving
    serial RNG-state equivalence in every dtype.
    """

    def __init__(self, task: TaskSpec, template: Module, capacity: int, dtype=None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        stacked_loss = STACKED_LOSSES.get(task.loss_fn)
        if stacked_loss is None:
            raise ValueError(f"no stacked counterpart for loss {task.loss_fn!r}")
        if not supports_stacking(template):
            raise ValueError(
                f"model {type(template).__name__} contains layers without stacked kernels"
            )
        self.task = task
        self.template = template
        self.dtype = resolve_dtype(dtype)
        self._loss = stacked_loss
        self.capacity = 0
        self._stacked: Optional[StackedModel] = None
        self._dropouts: List[StackedDropout] = []
        self._velocity: Optional[np.ndarray] = None
        self._anchors: Optional[np.ndarray] = None
        self._work: Optional[np.ndarray] = None
        # Batch-assembly buffers, (re)allocated lazily by example shape.
        self._xbuf: Optional[np.ndarray] = None
        self._ybuf: Optional[np.ndarray] = None
        self._mbuf: Optional[np.ndarray] = None
        self.ensure_capacity(capacity)

    @property
    def n_params(self) -> int:
        return self._stacked.n_params

    @property
    def stacked_model(self) -> StackedModel:
        """The underlying slab model. Between :meth:`train_groups` calls
        its rows are free scratch — every round reloads them from the
        groups' start vectors — so fused evaluation borrows it as an
        inference slab (:meth:`~repro.nn.stacked.StackedModel.forward_eval`)
        instead of allocating a second ``(C, P)`` allocation."""
        return self._stacked

    def ensure_capacity(self, rows: int) -> None:
        """Grow the slab (and every row-shaped buffer) to hold ``rows``."""
        if rows <= self.capacity:
            return
        self._stacked = StackedModel(self.template, rows, dtype=self.dtype)
        self._dropouts = [
            layer
            for layer in self._stacked.layers
            if isinstance(layer, StackedDropout) and layer.rate > 0
        ]
        self.capacity = rows
        self._work = np.empty_like(self._stacked.slab)
        self._velocity = None
        self._anchors = None
        self._xbuf = self._ybuf = self._mbuf = None

    # -- internals -----------------------------------------------------------
    def _data_dtype(self, dt):
        """Batch-data dtype policy: in reduced-precision mode, floating
        batch data follows the slab dtype (casting once at assembly keeps
        every kernel in one precision); integer labels/ids — and all data
        in the float64 reference mode — pass through unchanged."""
        if self.dtype != np.float64 and np.issubdtype(dt, np.floating):
            return self.dtype
        return dt

    def _ensure_batch_buffers(self, x0: np.ndarray, y0: np.ndarray, width: int) -> None:
        # Grow-only: a buffer at least `width` wide is sliced per step, so
        # alternating round widths never thrash allocations.
        xdt = self._data_dtype(x0.dtype)
        ydt = self._data_dtype(y0.dtype)
        if (
            self._xbuf is None
            or self._xbuf.dtype != xdt
            or self._xbuf.shape[0] < self.capacity
            or self._xbuf.shape[1] < width
            or self._xbuf.shape[2:] != x0.shape[1:]
            or self._ybuf.shape[2:] != y0.shape[1:]
            or self._ybuf.dtype != ydt
        ):
            width = max(width, self._xbuf.shape[1] if self._xbuf is not None else 0)
            self._xbuf = np.empty((self.capacity, width) + x0.shape[1:], dtype=xdt)
            self._ybuf = np.empty((self.capacity, width) + y0.shape[1:], dtype=ydt)
            self._mbuf = np.empty((self.capacity, width), dtype=self.dtype)

    def _probe_dropout_shapes(self, client: ClientData) -> List[tuple]:
        """Feature shape each active Dropout layer sees, learned from a
        one-example forward with every layer's shape probe armed
        (:meth:`~repro.nn.stacked.StackedDropout.begin_shape_probe`) — no
        masks drawn, no generator consumed, no gradients touched (the
        probe never runs backward), and every forward cache is overwritten
        by the round's first real step."""
        for layer in self._dropouts:
            layer.begin_shape_probe()
        self._stacked.forward(client.x[:1][None])
        shapes = []
        for layer in self._dropouts:
            if layer.probe_shape is None:
                raise RuntimeError("shape probe did not reach a Dropout layer")
            shapes.append(layer.probe_shape)
        return shapes

    def _predraw_interleaved(
        self, groups, clients_flat, schedule, pos_of_row, row_base, n_rows
    ) -> None:
        """Eagerly draw the round's Dropout masks in the serial
        *interleaved* order — client (group by group, cohort order
        within), local step, layer in forward order — and install each
        layer's finished stream (:meth:`StackedDropout.install_masks`).

        This is the shared-generator mode: when several layers draw from
        one generator object, the serial loop's consumption of that
        stream alternates between layers within every step, which the
        per-layer lazy plans cannot reproduce. Drawing here in exactly
        the serial order keeps both mask values and the generator's end
        state bit-identical to the serial path — also for groups whose
        generators are disjoint, since restricting the interleaved order
        to a single stream yields that stream's per-layer order.
        """
        feat_shapes = self._probe_dropout_shapes(clients_flat[0])
        keeps = [1.0 - layer.rate for layer in self._dropouts]
        n_layers = len(self._dropouts)
        all_masks: List[List[Optional[List[np.ndarray]]]] = [
            [None] * n_rows for _ in range(n_layers)
        ]
        for gi, group in enumerate(groups):
            for ci in range(len(group.clients)):
                pos = int(pos_of_row[row_base[gi] + ci])
                per_layer: List[List[np.ndarray]] = [[] for _ in range(n_layers)]
                for _, _, b in schedule[pos]:
                    for d_idx in range(n_layers):
                        rng = group.dropout_rngs[d_idx]
                        per_layer[d_idx].append(
                            (rng.random((b,) + feat_shapes[d_idx]) < keeps[d_idx])
                            / keeps[d_idx]
                        )
                for d_idx in range(n_layers):
                    all_masks[d_idx][pos] = per_layer[d_idx]
        for d_idx, layer in enumerate(self._dropouts):
            layer.install_masks(all_masks[d_idx])

    def train_groups(self, groups: Sequence[SlabGroup], outs: Sequence[np.ndarray]) -> List[bool]:
        """Run every group's local training in one lockstep slab.

        Writes each *successful* group's updated flat parameters into its
        ``outs`` entry (shape ``(len(group.clients), P)``, cohort order)
        and returns per-group success flags. A failed group (some client's
        loss went non-finite) leaves its ``outs`` entry unspecified; the
        caller must restore that trainer's RNG snapshots and rerun its
        round serially. Generator state of *successful* groups is final —
        permutations were pre-drawn by the caller and dropout masks are
        consumed here in serial order.
        """
        n_groups = len(groups)
        if n_groups == 0:
            return []
        if len(outs) != n_groups:
            raise ValueError(f"expected {n_groups} output buffers, got {len(outs)}")
        for gi, group in enumerate(groups):
            if len(group.clients) < 1:
                raise ValueError(f"group {gi} has no clients")
            if outs[gi].shape != (len(group.clients), self.n_params):
                raise ValueError(
                    f"outs[{gi}] must be {(len(group.clients), self.n_params)}, "
                    f"got {outs[gi].shape}"
                )
            if self._dropouts and len(group.dropout_rngs) != len(self._dropouts):
                raise ValueError(
                    f"group {gi} supplies {len(group.dropout_rngs)} dropout generators, "
                    f"model has {len(self._dropouts)} active Dropout layers"
                )
        # Flat row tables: row r is client `clients_flat[r]` of group
        # `group_of_row[r]` (groups are contiguous blocks of rows). Plain
        # lists — at cohort scale, numpy call overhead would dominate.
        group_sizes = [len(g.clients) for g in groups]
        clients_flat = [c for g in groups for c in g.clients]
        perms_flat = [p for g in groups for p in g.perms]
        n_rows = len(clients_flat)
        self.ensure_capacity(n_rows)
        group_of_row = [gi for gi, size in enumerate(group_sizes) for _ in range(size)]
        row_base = [0]
        for size in group_sizes:
            row_base.append(row_base[-1] + size)
        ns = [c.n for c in clients_flat]
        step_counts = [
            groups[gi].epochs * -(-n // groups[gi].batch_size)
            for gi, n in zip(group_of_row, ns)
        ]

        # Process rows sorted by step count (stable descending) so the
        # active set is always a prefix of the slab. When every row has the
        # same step count (the common rung/bank shape) the sort is skipped
        # — ordering of independent rows never affects the math.
        if min(step_counts) == max(step_counts):
            order = pos_of_row = range(n_rows)
            steps_sorted = step_counts
            group_of_pos = group_of_row
        else:
            order = sorted(range(n_rows), key=lambda r: -step_counts[r])
            steps_sorted = [step_counts[r] for r in order]
            group_of_pos = [group_of_row[r] for r in order]
            pos_of_row = [0] * n_rows
            for pos, r in enumerate(order):
                pos_of_row[r] = pos
        # Uniform-schedule fast path: when every row shares one
        # (n, batch_size, epochs) triple — balanced partitions, and every
        # rung/bank build over them — the permuted data pre-stacks into one
        # (R, epochs*n, ...) array per round and each lockstep step's batch
        # is a zero-copy *slice* of it: no per-row assembly, no padding, no
        # mask, no retirement bookkeeping. Values are identical to the
        # general path's buffer fills (same elements, viewed in place).
        uniform_schedule = min(ns) == max(ns) and all(
            (g.batch_size, g.epochs) == (groups[0].batch_size, groups[0].epochs)
            for g in groups[1:]
        )
        perm_x: List[List[np.ndarray]] = []
        perm_y: List[List[np.ndarray]] = []
        schedule: List[List[Tuple[int, int, int]]]
        stacked_x = stacked_y = None
        if uniform_schedule:
            n_ex, u_bsz, u_epochs = int(ns[0]), groups[0].batch_size, groups[0].epochs
            first = clients_flat[0]
            stacked_x = np.empty(
                (n_rows, u_epochs * n_ex) + first.x.shape[1:],
                dtype=self._data_dtype(first.x.dtype),
            )
            stacked_y = np.empty(
                (n_rows, u_epochs * n_ex) + first.y.shape[1:],
                dtype=self._data_dtype(first.y.dtype),
            )
            for r in range(n_rows):
                client = clients_flat[r]
                pos = pos_of_row[r]
                for e, perm in enumerate(perms_flat[r]):
                    stacked_x[pos, e * n_ex : (e + 1) * n_ex] = client.x[perm]
                    stacked_y[pos, e * n_ex : (e + 1) * n_ex] = client.y[perm]
            # One schedule shared by every row; the generic plumbing below
            # (dropout plans, step sizes) reads schedule[pos] as before.
            shared_schedule = [
                (e, s, min(u_bsz, n_ex - s))
                for e in range(u_epochs)
                for s in range(0, n_ex, u_bsz)
            ]
            schedule = [shared_schedule] * n_rows
        else:
            # Per sorted position: permuted data per epoch, and the (epoch,
            # start, size) schedule per lockstep step.
            schedule = []
            for pos in range(n_rows):
                r = int(order[pos])
                group = groups[int(group_of_row[r])]
                client = clients_flat[r]
                bsz = group.batch_size
                perm_x.append([client.x[p] for p in perms_flat[r]])
                perm_y.append([client.y[p] for p in perms_flat[r]])
                schedule.append(
                    [
                        (e, s, min(bsz, client.n - s))
                        for e in range(group.epochs)
                        for s in range(0, client.n, bsz)
                    ]
                )

        # Hyperparameters: per knob, one scalar when uniform across groups
        # (the single-trainer path; and e.g. the fixed weight decay of the
        # paper's search space even when lr/momentum differ per trial),
        # else a per-row vector in sorted row order. Scalar ufunc operands
        # are cheaper than column broadcasts, so uniformity is detected
        # knob by knob.
        def row_hp(attr):
            v0 = getattr(groups[0], attr)
            if all(getattr(g, attr) == v0 for g in groups[1:]):
                return v0
            # Slab-dtype vector: under weak scalar promotion the scalar
            # path computes in the slab dtype too, so scalar and vector
            # rows stay bit-consistent in every precision.
            return np.array([getattr(groups[gi], attr) for gi in group_of_pos], dtype=self.dtype)

        def hp_slice(hp, k):
            return hp[:k] if isinstance(hp, np.ndarray) else hp

        lr_rows = row_hp("lr")
        mom_rows = row_hp("momentum")
        wd_rows = row_hp("weight_decay")
        prox_raw = row_hp("prox_mu")
        mom_any = bool(np.any(mom_rows))
        prox_any = bool(np.any(prox_raw))
        prox_rows = prox_raw[:, None] if isinstance(prox_raw, np.ndarray) else prox_raw

        model = self._stacked
        model.train()
        slab, gslab = model.slab, model.grad_slab
        if n_groups == 1:
            slab[:n_rows] = np.asarray(groups[0].start, dtype=slab.dtype)
        else:
            starts = np.stack([np.asarray(g.start, dtype=slab.dtype) for g in groups])
            slab[:n_rows] = starts[group_of_pos]
        if mom_any:
            if self._velocity is None:
                self._velocity = np.zeros_like(slab)
            else:
                self._velocity[:n_rows].fill(0.0)
        if prox_any:
            if self._anchors is None:
                self._anchors = np.empty_like(slab)
            self._anchors[:n_rows] = slab[:n_rows]
        if not uniform_schedule:
            max_width = max(
                min(groups[gi].batch_size, n) for gi, n in zip(group_of_row, ns)
            )
            first = clients_flat[0]
            self._ensure_batch_buffers(first.x, first.y, max_width)
        xbuf, ybuf, mbuf = self._xbuf, self._ybuf, self._mbuf

        # Dropout mask pre-draw plans: per stacked layer, entries in serial
        # visit order (group by group, cohort order within) pointing at the
        # row's sorted slab position. Masks are drawn lazily at the round's
        # first forward (see StackedDropout) — unless any group's layers
        # share one generator object, where the serial stream interleaves
        # across layers and the whole round must be drawn eagerly here.
        if self._dropouts:
            shared_rng = any(
                len({id(r) for r in g.dropout_rngs}) < len(g.dropout_rngs)
                for g in groups
            )
            if shared_rng:
                self._predraw_interleaved(
                    groups, clients_flat, schedule, pos_of_row, row_base, n_rows
                )
            else:
                for d_idx, layer in enumerate(self._dropouts):
                    plan = []
                    for gi, group in enumerate(groups):
                        rng = group.dropout_rngs[d_idx]
                        for ci in range(len(group.clients)):
                            pos = int(pos_of_row[row_base[gi] + ci])
                            plan.append((rng, [b for _, _, b in schedule[pos]], pos))
                    layer.begin_round(plan)

        failed = [False] * n_groups
        n_failed = 0
        max_steps = int(steps_sorted[0])
        active = n_rows
        work = self._work
        # Divergence (lr too large) is a designed code path, as in the
        # serial ClientTrainer: overflow is caught by the loss check.
        with np.errstate(over="ignore", invalid="ignore"):
            for t in range(max_steps):
                if uniform_schedule:
                    # Every row takes the same-size batch from the same
                    # offset of its pre-stacked data: zero-copy views, no
                    # padding, no retirement (all step counts are equal).
                    k = n_rows
                    e, s, b = schedule[0][t]
                    xb = stacked_x[:, e * n_ex + s : e * n_ex + s + b]
                    yb = stacked_y[:, e * n_ex + s : e * n_ex + s + b]
                    mask = None
                else:
                    while active > 0 and steps_sorted[active - 1] <= t:
                        active -= 1
                    k = active
                    sizes = [schedule[pos][t][2] for pos in range(k)]
                    width = max(sizes)
                    ragged = min(sizes) < width
                    xb = xbuf[:k, :width]
                    yb = ybuf[:k, :width]
                    for pos in range(k):
                        e, s, b = schedule[pos][t]
                        xb[pos, :b] = perm_x[pos][e][s : s + b]
                        yb[pos, :b] = perm_y[pos][e][s : s + b]
                        if b < width:
                            # Pad with copies of the batch's first real row
                            # so forward values stay finite; the mask
                            # removes them from loss and gradients.
                            xb[pos, b:] = xb[pos, :1]
                            yb[pos, b:] = yb[pos, 0]
                        if ragged:
                            mbuf[pos, :b] = 1.0
                            mbuf[pos, b:width] = 0.0
                    # A uniform step skips the mask entirely, keeping
                    # per-client loss arithmetic bit-identical to the
                    # serial batch mean.
                    mask = mbuf[:k, :width] if ragged else None
                for layer in self._dropouts:
                    layer.set_step(t)
                gslab[:k].fill(0.0)
                logits = model.forward(xb)
                losses, dlogits = self._loss(logits, yb, mask)
                finite = np.isfinite(losses)
                if not finite.all():
                    # A client diverged: its whole group falls back to a
                    # serial rerun by the caller. Other groups' rows are
                    # independent and keep training unaffected.
                    for pos in np.nonzero(~finite)[0]:
                        gi = int(group_of_pos[pos])
                        if not failed[gi]:
                            failed[gi] = True
                            n_failed += 1
                    if n_failed == n_groups:
                        return [False] * n_groups
                model.backward(dlogits)
                grads = gslab[:k]
                if prox_any:
                    # FedProx proximal pull towards the group's round-start
                    # parameters, added to the raw gradient exactly where
                    # the serial path adds it (before weight decay).
                    np.subtract(slab[:k], self._anchors[:k], out=work[:k])
                    work[:k] *= hp_slice(prox_rows, k)
                    grads += work[:k]
                fused_sgd_step(
                    slab[:k],
                    grads,
                    lr=hp_slice(lr_rows, k),
                    momentum=hp_slice(mom_rows, k),
                    weight_decay=hp_slice(wd_rows, k),
                    velocity=self._velocity[:k] if mom_any else None,
                    work=work[:k],
                )
        identity = isinstance(pos_of_row, range)
        for gi in range(n_groups):
            if not failed[gi]:
                # One gather per group: its rows' slab positions, cohort order.
                if identity:
                    outs[gi][...] = slab[row_base[gi] : row_base[gi + 1]]
                else:
                    outs[gi][...] = slab[pos_of_row[row_base[gi] : row_base[gi + 1]]]
        return [not f for f in failed]


class CohortTrainer:
    """Lockstep local SGD for a fixed-size client cohort (one trainer).

    A thin single-group wrapper over :class:`SlabTrainer`: it pre-draws the
    batch permutations from the shared trainer RNG in serial order,
    snapshots every generator the attempt consumes, and restores them on
    failure so the caller's serial rerun reproduces serial semantics
    exactly. Construct via :meth:`maybe_build`, which returns ``None`` for
    model or loss families without stacked kernels.

    One instance is reused across rounds: the stacked model, its slab, the
    velocity buffer, and the batch-assembly buffers are allocated once.
    """

    def __init__(
        self,
        task: TaskSpec,
        template: Module,
        cohort_size: int,
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        batch_size: int = 32,
        epochs: int = 1,
        prox_mu: float = 0.0,
        dtype=None,
    ):
        if cohort_size < 1:
            raise ValueError(f"cohort_size must be >= 1, got {cohort_size}")
        self.task = task
        self.cohort_size = cohort_size
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.batch_size = batch_size
        self.epochs = epochs
        self.prox_mu = prox_mu
        self._slab = SlabTrainer(task, template, cohort_size, dtype=dtype)
        self.dtype = self._slab.dtype
        self._dropout_rngs = collect_dropout_rngs(template)

    @staticmethod
    def supports(task: TaskSpec, template: Module) -> bool:
        """Whether this task/model pair has lockstep kernels (without
        paying for a slab — the fused path checks this per trial)."""
        return supports_stacking(template) and task.loss_fn in STACKED_LOSSES

    @classmethod
    def maybe_build(
        cls,
        task: TaskSpec,
        template: Module,
        cohort_size: int,
        **hps,
    ) -> Optional["CohortTrainer"]:
        """A :class:`CohortTrainer` when the model family supports stacking,
        else ``None`` (serial fallback)."""
        if not cls.supports(task, template):
            return None
        return cls(task, template, cohort_size, **hps)

    def train_cohort(
        self,
        global_params: np.ndarray,
        clients: Sequence[ClientData],
        rng: np.random.Generator,
        out: np.ndarray,
    ) -> bool:
        """Run every client's local training from ``global_params`` in lockstep.

        Writes each client's updated flat parameters into ``out`` (shape
        ``(len(clients), P)``, cohort order) and returns True. Returns
        False — with ``rng`` (and any Dropout generators) restored to
        their entry state and ``out`` unspecified — when any client's loss
        goes non-finite; the caller must then rerun the round serially.
        """
        n_clients = len(clients)
        if n_clients != self.cohort_size:
            raise ValueError(f"expected cohort of {self.cohort_size}, got {n_clients}")
        rng_snapshot = rng.bit_generator.state
        dropout_snapshots = [r.bit_generator.state for r in self._dropout_rngs]
        # Pre-draw batch permutations in the serial loop's exact RNG order:
        # client by client (cohort order), epoch by epoch.
        perms = [[rng.permutation(c.n) for _ in range(self.epochs)] for c in clients]
        group = SlabGroup(
            start=global_params,
            clients=clients,
            perms=perms,
            lr=self.lr,
            momentum=self.momentum,
            weight_decay=self.weight_decay,
            prox_mu=self.prox_mu,
            batch_size=self.batch_size,
            epochs=self.epochs,
            dropout_rngs=self._dropout_rngs,
        )
        if self._slab.train_groups([group], [out])[0]:
            return True
        rng.bit_generator.state = rng_snapshot
        for r, state in zip(self._dropout_rngs, dropout_snapshots):
            r.bit_generator.state = state
        return False
