"""Vectorized cohort training: all clients of a round in lockstep.

:class:`repro.fl.trainer.FederatedTrainer.run_round` historically trained
its cohort one client at a time through :class:`~repro.fl.client.ClientTrainer`
— hundreds of small-array layer calls per round. :class:`CohortTrainer`
replaces that loop with lockstep SGD over a :class:`~repro.nn.stacked.StackedModel`:
every client's parameters live in one ``(C, P)`` slab, every local step is
one batched forward/backward over a ``(C, B, ...)`` stacked batch, and the
optimizer update is one fused whole-slab call
(:func:`repro.nn.optim.fused_sgd_step`).

Equivalence contract (asserted in ``tests/fl/test_cohort.py``):

- **RNG stream.** Batch permutations are pre-drawn from the shared trainer
  RNG in exactly the order the serial loop draws them (client by client,
  epoch by epoch; local training consumes no other draws), so the
  generator's end state is identical to the serial path's.
- **Trajectories.** Per-step, per-client math matches the serial
  :class:`~repro.fl.client.ClientTrainer` kernel for kernel. When every
  active client's batch at a lockstep step has equal size (no padding),
  the round is bit-identical to serial; ragged steps pad short batches
  with loss-masked copies of a real row, which leaves gradient *sums*
  unchanged and perturbs only per-client reduction order (~1e-15
  relative per round; tests assert rtol=1e-8 over few-round windows).
- **Fallback.** Any client producing a non-finite loss mid-round aborts
  the vectorized attempt, restores the RNG snapshot, and reports failure;
  the caller reruns the round serially, reproducing serial semantics
  exactly (including the diverged client's early stop and its effect on
  later epoch permutation draws).

Clients are processed sorted by local step count (stable descending), so
finished clients retire from a shrinking *prefix* of the slab — ragged
cohorts never pay masked no-op steps.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.base import ClientData, TaskSpec
from repro.nn.module import Module
from repro.nn.optim import fused_sgd_step
from repro.nn.stacked import STACKED_LOSSES, StackedModel, supports_stacking

#: Environment switch for the default cohort mode: truthy values ("1",
#: "true", "yes", "on", "vectorized") select the vectorized path.
COHORT_VECTOR_ENV = "REPRO_COHORT_VECTOR"

COHORT_MODES = ("serial", "vectorized")


def resolve_cohort_mode(mode: Optional[str] = None) -> str:
    """Resolve an explicit or environment-provided cohort mode.

    ``None`` consults ``$REPRO_COHORT_VECTOR`` (unset/falsy -> "serial",
    so vectorization is opt-in, like ``REPRO_WORKERS``/``REPRO_BANK_CACHE``).
    """
    if mode is None:
        raw = os.environ.get(COHORT_VECTOR_ENV, "").strip().lower()
        return "vectorized" if raw in ("1", "true", "yes", "on", "vectorized") else "serial"
    if mode not in COHORT_MODES:
        raise ValueError(f"cohort_mode must be one of {COHORT_MODES}, got {mode!r}")
    return mode


class CohortTrainer:
    """Lockstep local SGD for a fixed-size client cohort.

    Construct via :meth:`maybe_build`, which returns ``None`` for model or
    loss families without stacked kernels (recurrent text models, Dropout
    models) — the caller then keeps the serial per-client path.

    One instance is reused across rounds: the stacked model, its slab, the
    velocity buffer, and the batch-assembly buffers are allocated once.
    """

    def __init__(
        self,
        task: TaskSpec,
        template: Module,
        cohort_size: int,
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        batch_size: int = 32,
        epochs: int = 1,
        prox_mu: float = 0.0,
    ):
        if cohort_size < 1:
            raise ValueError(f"cohort_size must be >= 1, got {cohort_size}")
        stacked_loss = STACKED_LOSSES.get(task.loss_fn)
        if stacked_loss is None:
            raise ValueError(f"no stacked counterpart for loss {task.loss_fn!r}")
        self.task = task
        self.cohort_size = cohort_size
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.batch_size = batch_size
        self.epochs = epochs
        self.prox_mu = prox_mu
        self._loss = stacked_loss
        self._stacked = StackedModel(template, cohort_size)
        self._velocity = (
            np.zeros_like(self._stacked.slab) if momentum else None
        )
        self._work = np.empty_like(self._stacked.slab)
        # Batch-assembly buffers, (re)allocated lazily by example shape.
        self._xbuf: Optional[np.ndarray] = None
        self._ybuf: Optional[np.ndarray] = None
        self._mbuf: Optional[np.ndarray] = None

    @classmethod
    def maybe_build(
        cls,
        task: TaskSpec,
        template: Module,
        cohort_size: int,
        **hps,
    ) -> Optional["CohortTrainer"]:
        """A :class:`CohortTrainer` when the model family supports stacking,
        else ``None`` (serial fallback)."""
        if not supports_stacking(template) or task.loss_fn not in STACKED_LOSSES:
            return None
        return cls(task, template, cohort_size, **hps)

    # -- internals -----------------------------------------------------------
    def _ensure_buffers(self, x0: np.ndarray, y0: np.ndarray) -> None:
        xshape = (self.cohort_size, self.batch_size) + x0.shape[1:]
        if self._xbuf is None or self._xbuf.shape != xshape or self._xbuf.dtype != x0.dtype:
            self._xbuf = np.empty(xshape, dtype=x0.dtype)
            self._ybuf = np.empty(
                (self.cohort_size, self.batch_size) + y0.shape[1:], dtype=y0.dtype
            )
            self._mbuf = np.empty((self.cohort_size, self.batch_size), dtype=np.float64)

    def train_cohort(
        self,
        global_params: np.ndarray,
        clients: Sequence[ClientData],
        rng: np.random.Generator,
        out: np.ndarray,
    ) -> bool:
        """Run every client's local training from ``global_params`` in lockstep.

        Writes each client's updated flat parameters into ``out`` (shape
        ``(len(clients), P)``, cohort order) and returns True. Returns
        False — with ``rng`` restored to its entry state and ``out``
        unspecified — when any client's loss goes non-finite; the caller
        must then rerun the round serially.
        """
        n_clients = len(clients)
        if n_clients != self.cohort_size:
            raise ValueError(f"expected cohort of {self.cohort_size}, got {n_clients}")
        if out.shape != (n_clients, self._stacked.n_params):
            raise ValueError(
                f"out must be {(n_clients, self._stacked.n_params)}, got {out.shape}"
            )
        rng_snapshot = rng.bit_generator.state
        bsz, epochs = self.batch_size, self.epochs
        # Pre-draw batch permutations in the serial loop's exact RNG order:
        # client by client (cohort order), epoch by epoch.
        perms = [[rng.permutation(c.n) for _ in range(epochs)] for c in clients]

        # Process clients sorted by step count (stable descending) so the
        # active set is always a prefix of the slab.
        step_counts = np.array([epochs * -(-c.n // bsz) for c in clients])
        order = np.argsort(-step_counts, kind="stable")
        steps_sorted = step_counts[order]
        # Per sorted position: permuted data per epoch, and the (epoch,
        # start, size) schedule per lockstep step.
        perm_x: List[List[np.ndarray]] = []
        perm_y: List[List[np.ndarray]] = []
        schedule: List[List[Tuple[int, int, int]]] = []
        for pos in range(n_clients):
            i = int(order[pos])
            client = clients[i]
            perm_x.append([client.x[p] for p in perms[i]])
            perm_y.append([client.y[p] for p in perms[i]])
            schedule.append(
                [
                    (e, s, min(bsz, client.n - s))
                    for e in range(epochs)
                    for s in range(0, client.n, bsz)
                ]
            )

        model = self._stacked
        model.train()
        model.set_flat(global_params)
        slab, gslab = model.slab, model.grad_slab
        if self._velocity is not None:
            self._velocity.fill(0.0)
        self._ensure_buffers(clients[0].x, clients[0].y)
        xbuf, ybuf, mbuf = self._xbuf, self._ybuf, self._mbuf

        max_steps = int(steps_sorted[0])
        active = n_clients
        # Divergence (lr too large) is a designed code path, as in the
        # serial ClientTrainer: overflow is caught by the loss check.
        with np.errstate(over="ignore", invalid="ignore"):
            for t in range(max_steps):
                while active > 0 and steps_sorted[active - 1] <= t:
                    active -= 1
                k = active
                sizes = [schedule[pos][t][2] for pos in range(k)]
                width = max(sizes)
                ragged = min(sizes) < width
                xb = xbuf[:k, :width]
                yb = ybuf[:k, :width]
                for pos in range(k):
                    e, s, b = schedule[pos][t]
                    xb[pos, :b] = perm_x[pos][e][s : s + b]
                    yb[pos, :b] = perm_y[pos][e][s : s + b]
                    if b < width:
                        # Pad with copies of the batch's first real row so
                        # forward values stay finite; the mask removes them
                        # from loss and gradients.
                        xb[pos, b:] = xb[pos, :1]
                        yb[pos, b:] = yb[pos, 0]
                    if ragged:
                        mbuf[pos, :b] = 1.0
                        mbuf[pos, b:width] = 0.0
                # A uniform step skips the mask entirely, keeping per-client
                # loss arithmetic bit-identical to the serial batch mean.
                mask = mbuf[:k, :width] if ragged else None
                gslab[:k].fill(0.0)
                logits = model.forward(xb)
                losses, dlogits = self._loss(logits, yb, mask)
                if not np.all(np.isfinite(losses)):
                    # A client diverged: replay the whole round serially so
                    # its early-stop semantics (and RNG draws) match exactly.
                    rng.bit_generator.state = rng_snapshot
                    return False
                model.backward(dlogits)
                grads = gslab[:k]
                if self.prox_mu > 0:
                    # FedProx proximal pull towards the round's global
                    # parameters, added to the raw gradient exactly where
                    # the serial path adds it (before weight decay).
                    grads += self.prox_mu * (slab[:k] - global_params[None, :])
                fused_sgd_step(
                    slab[:k],
                    grads,
                    lr=self.lr,
                    momentum=self.momentum,
                    weight_decay=self.weight_decay,
                    velocity=self._velocity[:k] if self._velocity is not None else None,
                    work=self._work[:k],
                )
        out[order] = slab
        return True
