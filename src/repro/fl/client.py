"""Client-side local training and evaluation (``ClientOPT`` in Algorithm 2)."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.datasets.base import ClientData, TaskSpec
from repro.nn.module import Module, get_flat_params, set_flat_params
from repro.nn.optim import SGD
from repro.utils.rng import SeedLike, as_rng


class ClientTrainer:
    """Runs local SGD on one client and returns the updated parameters.

    Mirrors the paper's client setup (Appendix B): SGD with momentum and
    weight decay, a tunable batch size, and a fixed number of local epochs
    (1 in all paper experiments). The trainer reuses a single shared model
    object — the caller passes global parameters in and receives updated
    parameters out, so no per-client model allocation happens.
    """

    def __init__(
        self,
        task: TaskSpec,
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        batch_size: int = 32,
        epochs: int = 1,
        prox_mu: float = 0.0,
    ):
        if lr <= 0:
            raise ValueError(f"client lr must be positive, got {lr}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        if prox_mu < 0:
            raise ValueError(f"prox_mu must be >= 0, got {prox_mu}")
        self.task = task
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.batch_size = batch_size
        self.epochs = epochs
        self.prox_mu = prox_mu

    def train(
        self,
        model: Module,
        global_params: np.ndarray,
        client: ClientData,
        rng: SeedLike = None,
    ) -> np.ndarray:
        """Local training from ``global_params``; returns updated flat params.

        Momentum state is per-invocation (clients are stateless across
        rounds in cross-device FL — a device may never be sampled twice).
        """
        rng = as_rng(rng)
        set_flat_params(model, global_params)
        model.train()
        opt = SGD(
            model.parameters(),
            lr=self.lr,
            momentum=self.momentum,
            weight_decay=self.weight_decay,
        )
        params = model.parameters()
        anchors = [p.data.copy() for p in params] if self.prox_mu > 0 else None
        n = client.n
        # Divergence (lr too large) is a designed code path: overflow in the
        # forward pass is caught via the finite-loss check, not raised.
        with np.errstate(over="ignore", invalid="ignore"):
            for _ in range(self.epochs):
                order = rng.permutation(n)
                for start in range(0, n, self.batch_size):
                    idx = order[start : start + self.batch_size]
                    xb, yb = client.x[idx], client.y[idx]
                    model.zero_grad()
                    logits = model(xb)
                    loss, dlogits = self.task.loss_fn(logits, yb)
                    if not np.isfinite(loss):
                        # Diverged config: stop local work; the caller sees
                        # a bad error rate, which is the signal HP tuning
                        # acts on.
                        return get_flat_params(model)
                    model.backward(dlogits)
                    if anchors is not None:
                        # FedProx (Li et al., 2020): proximal pull towards
                        # the round's global parameters bounds client drift.
                        for p, anchor in zip(params, anchors):
                            p.grad += self.prox_mu * (p.data - anchor)
                    opt.step()
        return get_flat_params(model)


def evaluate_client(
    model: Module, client: ClientData, task: TaskSpec
) -> Tuple[int, int]:
    """Error counts ``(n_wrong, n_total)`` of ``model`` on one client's data."""
    model.eval()
    with np.errstate(over="ignore", invalid="ignore"):
        logits = model(client.x)
    if not np.all(np.isfinite(logits)):
        # A diverged model mispredicts everything by convention.
        _, n_total = task.error_fn(np.zeros_like(logits), client.y)
        return n_total, n_total
    return task.error_fn(logits, client.y)
