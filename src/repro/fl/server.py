"""Server optimizers (``ServerOPT`` in Algorithm 2).

These implement the adaptive federated optimization family of Reddi et al.
(2020): the round's aggregated client update is treated as a pseudo-gradient
``Δ_t = w_t - avg_k(w_k)`` and fed to a server-side first-order method.
The paper tunes FedAdam's learning rate and both moment-decay rates, with a
fixed multiplicative lr decay γ = 0.9999 per round (Appendix B).
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class ServerOptimizer:
    """Base class: stateful update rule on flat parameter vectors."""

    # Mutable attributes that fully determine future updates; subclasses
    # extend this to cover their moment buffers. state_dict()/
    # load_state_dict() round-trip exactly these, which is what lets a
    # trainer advanced in a worker process resume bit-identically in the
    # parent (see repro.engine).
    _STATE_ATTRS = ("_t",)

    def __init__(self, lr: float, lr_decay: float = 1.0):
        if lr <= 0:
            raise ValueError(f"server lr must be positive, got {lr}")
        if not 0.0 < lr_decay <= 1.0:
            raise ValueError(f"lr_decay must be in (0, 1], got {lr_decay}")
        self.base_lr = lr
        self.lr_decay = lr_decay
        self._t = 0

    def state_dict(self) -> dict:
        """Copy of all mutable optimizer state."""
        out = {}
        for name in self._STATE_ATTRS:
            value = getattr(self, name)
            out[name] = value.copy() if isinstance(value, np.ndarray) else value
        return out

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        for name in self._STATE_ATTRS:
            value = state[name]
            setattr(self, name, value.copy() if isinstance(value, np.ndarray) else value)

    @property
    def current_lr(self) -> float:
        """Learning rate after decay: ``lr * γ^t``."""
        return self.base_lr * self.lr_decay**self._t

    def step(self, params: np.ndarray, pseudo_grad: np.ndarray) -> np.ndarray:
        """Apply one server update and return the new parameters."""
        if params.shape != pseudo_grad.shape:
            raise ValueError(
                f"shape mismatch: params {params.shape} vs pseudo-grad {pseudo_grad.shape}"
            )
        new_params = self._update(params, pseudo_grad)
        self._t += 1
        return new_params

    def _update(self, params: np.ndarray, g: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class FedAvg(ServerOptimizer):
    """Server SGD: ``w <- w - lr * Δ``. With lr = 1 this is vanilla FedAvg
    (the new parameters are exactly the aggregated client average)."""

    def __init__(self, lr: float = 1.0, lr_decay: float = 1.0):
        super().__init__(lr, lr_decay)

    def _update(self, params: np.ndarray, g: np.ndarray) -> np.ndarray:
        return params - self.current_lr * g


class FedAvgM(ServerOptimizer):
    """Server SGD with momentum (FedAvgM, Hsu et al. 2019)."""

    _STATE_ATTRS = ("_t", "_velocity")

    def __init__(self, lr: float = 1.0, momentum: float = 0.9, lr_decay: float = 1.0):
        super().__init__(lr, lr_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity: Optional[np.ndarray] = None

    def _update(self, params: np.ndarray, g: np.ndarray) -> np.ndarray:
        if self._velocity is None:
            self._velocity = np.zeros_like(params)
        self._velocity = self.momentum * self._velocity + g
        return params - self.current_lr * self._velocity


class _AdaptiveServerOptimizer(ServerOptimizer):
    """Shared moment bookkeeping for FedAdagrad / FedAdam / FedYogi."""

    _STATE_ATTRS = ("_t", "_m", "_v")

    def __init__(
        self,
        lr: float,
        beta1: float = 0.9,
        beta2: float = 0.99,
        tau: float = 1e-3,
        lr_decay: float = 1.0,
    ):
        super().__init__(lr, lr_decay)
        if not 0.0 <= beta1 < 1.0:
            raise ValueError(f"beta1 must be in [0, 1), got {beta1}")
        if not 0.0 <= beta2 < 1.0:
            raise ValueError(f"beta2 must be in [0, 1), got {beta2}")
        if tau <= 0:
            raise ValueError(f"tau must be positive, got {tau}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.tau = tau
        self._m: Optional[np.ndarray] = None
        self._v: Optional[np.ndarray] = None

    def _ensure_state(self, params: np.ndarray) -> None:
        if self._m is None:
            self._m = np.zeros_like(params)
            self._v = np.zeros_like(params)

    def _second_moment(self, g: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _update(self, params: np.ndarray, g: np.ndarray) -> np.ndarray:
        self._ensure_state(params)
        self._m = self.beta1 * self._m + (1.0 - self.beta1) * g
        self._v = self._second_moment(g)
        return params - self.current_lr * self._m / (np.sqrt(self._v) + self.tau)


class FedAdam(_AdaptiveServerOptimizer):
    """FedAdam (Reddi et al. 2020) — the paper's tuned server optimizer.

    The paper's search space (Appendix B): ``log10 lr ~ U[-6, -1]``,
    ``beta1 ~ U[0, 0.9]``, ``beta2 ~ U[0, 0.999]``, γ = 0.9999.
    """

    def _second_moment(self, g: np.ndarray) -> np.ndarray:
        return self.beta2 * self._v + (1.0 - self.beta2) * g**2


class FedAdagrad(_AdaptiveServerOptimizer):
    """FedAdagrad: accumulating second moment."""

    def _second_moment(self, g: np.ndarray) -> np.ndarray:
        return self._v + g**2


class FedYogi(_AdaptiveServerOptimizer):
    """FedYogi: sign-controlled second-moment update."""

    def _second_moment(self, g: np.ndarray) -> np.ndarray:
        g2 = g**2
        return self._v - (1.0 - self.beta2) * g2 * np.sign(self._v - g2)


_SERVER_OPTIMIZERS = {
    "fedavg": FedAvg,
    "fedavgm": FedAvgM,
    "fedadam": FedAdam,
    "fedadagrad": FedAdagrad,
    "fedyogi": FedYogi,
}


def make_server_optimizer(name: str, **kwargs) -> ServerOptimizer:
    """Factory by name (``fedavg``, ``fedavgm``, ``fedadam``, ``fedadagrad``,
    ``fedyogi``)."""
    try:
        cls = _SERVER_OPTIMIZERS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown server optimizer {name!r}; choose from {sorted(_SERVER_OPTIMIZERS)}"
        ) from None
    return cls(**kwargs)
