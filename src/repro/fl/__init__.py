"""Cross-device federated learning simulator.

Implements the training/evaluation workflow of the paper's §2.1 and
Algorithm 2: a server holds global model parameters; each round it samples
a small client cohort, runs local SGD on each client, aggregates the
weighted parameter average, and applies a server optimizer (FedAdam family,
Reddi et al. 2020) to the pseudo-gradient.
"""

from repro.fl.client import ClientTrainer, evaluate_client
from repro.fl.cohort import (
    COHORT_MODES,
    COHORT_VECTOR_ENV,
    CohortTrainer,
    SlabGroup,
    SlabTrainer,
    resolve_cohort_mode,
)
from repro.fl.fused import FusedTrainerPool
from repro.fl.server import (
    FedAdagrad,
    FedAdam,
    FedAvg,
    FedAvgM,
    FedYogi,
    ServerOptimizer,
    make_server_optimizer,
)
from repro.fl.sampling import BiasedSampler, UniformSampler, biased_weights
from repro.fl.trainer import FederatedTrainer, LocalTrainingConfig
from repro.fl.evaluation import (
    EvalChunkPlan,
    StackedEvalEngine,
    clear_eval_plan_cache,
    client_error_rates,
    eval_chunk_plan,
    evaluate_model,
    fused_group_rates,
    federated_error,
    stacked_client_error_rates,
    tail_error,
)

__all__ = [
    "ClientTrainer",
    "evaluate_client",
    "CohortTrainer",
    "COHORT_MODES",
    "COHORT_VECTOR_ENV",
    "FusedTrainerPool",
    "SlabGroup",
    "SlabTrainer",
    "resolve_cohort_mode",
    "ServerOptimizer",
    "FedAvg",
    "FedAvgM",
    "FedSGD",
    "FedAdam",
    "FedAdagrad",
    "FedYogi",
    "make_server_optimizer",
    "UniformSampler",
    "BiasedSampler",
    "biased_weights",
    "FederatedTrainer",
    "LocalTrainingConfig",
    "EvalChunkPlan",
    "StackedEvalEngine",
    "clear_eval_plan_cache",
    "client_error_rates",
    "eval_chunk_plan",
    "evaluate_model",
    "fused_group_rates",
    "federated_error",
    "stacked_client_error_rates",
    "tail_error",
]

FedSGD = FedAvg  # FedAvg with server lr is exactly server-side SGD.
