"""Model parameter persistence (.npz).

Stores the flat parameter vector plus per-parameter shape metadata so a
mismatched architecture is rejected at load time instead of silently
reshaping.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, get_flat_params, set_flat_params


def save_params(module: Module, path: str) -> None:
    """Write ``module``'s parameters to ``path`` (.npz)."""
    shapes = np.array([list(p.shape) + [-1] * (4 - len(p.shape)) for p in module.parameters()])
    np.savez_compressed(path, flat=get_flat_params(module), shapes=shapes)


def load_params(module: Module, path: str) -> None:
    """Load parameters saved by :func:`save_params` into ``module``.

    Raises ``ValueError`` if the stored shapes do not match the module's
    architecture.
    """
    with np.load(path) as data:
        flat = data["flat"]
        shapes = data["shapes"]
    current = np.array(
        [list(p.shape) + [-1] * (4 - len(p.shape)) for p in module.parameters()]
    )
    if shapes.shape != current.shape or not np.array_equal(shapes, current):
        raise ValueError(
            f"architecture mismatch: stored {shapes.tolist()} vs module {current.tolist()}"
        )
    set_flat_params(module, flat)
