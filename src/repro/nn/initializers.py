"""Weight initializers.

All initializers take an explicit :class:`numpy.random.Generator` so model
construction is fully deterministic given a seed — a hard requirement for
the configuration-bank methodology (the same HP config must always map to
the same initial weights within a trial).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


def _fan_in_out(shape: Sequence[int]) -> Tuple[int, int]:
    """Compute (fan_in, fan_out) for dense and conv weight shapes."""
    if len(shape) < 1:
        raise ValueError("initializer shape must have at least 1 dim")
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:  # (in, out)
        return shape[0], shape[1]
    # Conv (out_channels, in_channels, kh, kw)
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive


def glorot_uniform(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform: U(-a, a) with a = sqrt(6/(fan_in+fan_out))."""
    fan_in, fan_out = _fan_in_out(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_normal(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """He normal: N(0, sqrt(2/fan_in)) — suited to ReLU layers."""
    fan_in, _ = _fan_in_out(shape)
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


def normal_init(shape: Sequence[int], rng: np.random.Generator, std: float = 0.02) -> np.ndarray:
    """Plain normal init (used for embeddings)."""
    return rng.normal(0.0, std, size=shape)


def zeros_init(shape: Sequence[int], rng: np.random.Generator = None) -> np.ndarray:
    """All-zero init (biases)."""
    return np.zeros(shape, dtype=np.float64)


def orthogonal(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """Orthogonal init for recurrent weight matrices (2-D shapes only)."""
    if len(shape) != 2:
        raise ValueError(f"orthogonal init requires a 2-D shape, got {shape}")
    rows, cols = shape
    size = max(rows, cols)
    a = rng.normal(0.0, 1.0, size=(size, size))
    q, r = np.linalg.qr(a)
    # Sign correction makes the distribution uniform over orthogonal matrices.
    q = q * np.sign(np.diag(r))
    return q[:rows, :cols].copy()
