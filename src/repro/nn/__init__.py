"""A from-scratch NumPy neural-network library.

This is the trainable-model substrate for the federated-learning simulator.
It provides exactly what the paper's models need — 2-layer CNNs for image
classification and 2-layer LSTMs for next-token prediction — implemented
with explicit, gradient-checked backward passes and vectorized NumPy.

Design notes
------------
- Layers follow a ``forward(x) -> y`` / ``backward(dy) -> dx`` protocol and
  accumulate parameter gradients into ``Parameter.grad``.
- Models expose flat-vector parameter access (:func:`get_flat_params` /
  :func:`set_flat_params`) because federated aggregation operates on flat
  parameter/pseudo-gradient vectors.
- Serial layers are float64: the workloads are tiny and exact gradients make
  the library testable with numerical differentiation. The stacked slab
  kernels route their array ops through :mod:`repro.nn.backend` — a thin
  array-namespace shim with a capability probe — so an alternate backend
  (CuPy, torch) or an opt-in float32 slab dtype (``$REPRO_DTYPE``) drops in
  without touching kernel code; float64-on-NumPy stays the bit-exact
  serial-equivalence reference.
"""

from repro.nn.backend import (
    BACKEND_ENV,
    DTYPE_ENV,
    ArrayBackend,
    available_backends,
    get_backend,
    register_backend,
    resolve_dtype,
    set_backend,
    use_backend,
    xp,
)
from repro.nn.module import (
    Module,
    Parameter,
    Sequential,
    get_flat_grads,
    get_flat_params,
    set_flat_params,
)
from repro.nn.initializers import glorot_uniform, he_normal, normal_init, zeros_init, orthogonal
from repro.nn.functional import im2col, col2im, log_softmax, one_hot, softmax
from repro.nn.layers import (
    Conv2D,
    Dropout,
    Embedding,
    Flatten,
    Linear,
    MaxPool2D,
    ReLU,
    Sigmoid,
    Tanh,
)
from repro.nn.recurrent import LSTM, LSTMCell
from repro.nn.losses import mse_loss, softmax_cross_entropy, sequence_cross_entropy
from repro.nn.optim import (
    SGD,
    Adam,
    FlatSGD,
    Optimizer,
    copy_slab_rows,
    fused_sgd_step,
    perturb_rows,
)
from repro.nn.stacked import (
    STACKED_LOSSES,
    StackedConv2D,
    StackedDropout,
    StackedEmbedding,
    StackedFlatten,
    StackedLSTM,
    StackedLSTMCell,
    StackedLinear,
    StackedMaxPool2D,
    StackedModel,
    StackedReLU,
    StackedSigmoid,
    StackedTanh,
    collect_dropout_rngs,
    eval_stack_signature,
    stack_signature,
    stacked_mse,
    stacked_sequence_cross_entropy,
    stacked_softmax_cross_entropy,
    supports_stacking,
)
from repro.nn.models import make_cnn, make_lstm_lm, make_mlp, LanguageModel
from repro.nn.gradcheck import gradcheck_module, numerical_gradient
from repro.nn.serialization import load_params, save_params

__all__ = [
    "BACKEND_ENV",
    "DTYPE_ENV",
    "ArrayBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_dtype",
    "set_backend",
    "use_backend",
    "xp",
    "Module",
    "Parameter",
    "Sequential",
    "get_flat_grads",
    "get_flat_params",
    "set_flat_params",
    "glorot_uniform",
    "he_normal",
    "normal_init",
    "zeros_init",
    "orthogonal",
    "im2col",
    "col2im",
    "log_softmax",
    "one_hot",
    "softmax",
    "Conv2D",
    "Dropout",
    "Embedding",
    "Flatten",
    "Linear",
    "MaxPool2D",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "LSTM",
    "LSTMCell",
    "mse_loss",
    "softmax_cross_entropy",
    "sequence_cross_entropy",
    "SGD",
    "Adam",
    "FlatSGD",
    "Optimizer",
    "copy_slab_rows",
    "fused_sgd_step",
    "perturb_rows",
    "STACKED_LOSSES",
    "StackedConv2D",
    "StackedDropout",
    "StackedEmbedding",
    "StackedFlatten",
    "StackedLSTM",
    "StackedLSTMCell",
    "StackedLinear",
    "StackedMaxPool2D",
    "StackedModel",
    "StackedReLU",
    "StackedSigmoid",
    "StackedTanh",
    "collect_dropout_rngs",
    "eval_stack_signature",
    "stack_signature",
    "stacked_mse",
    "stacked_sequence_cross_entropy",
    "stacked_softmax_cross_entropy",
    "supports_stacking",
    "make_cnn",
    "make_lstm_lm",
    "make_mlp",
    "LanguageModel",
    "gradcheck_module",
    "numerical_gradient",
    "load_params",
    "save_params",
]
