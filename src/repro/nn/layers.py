"""Feed-forward layers: Linear, Conv2D, pooling, activations, embedding."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.functional import col2im, im2col
from repro.nn.initializers import glorot_uniform, normal_init, zeros_init
from repro.nn.module import Module, Parameter
from repro.utils.rng import SeedLike, as_rng


class Linear(Module):
    """Affine layer ``y = x W + b`` with ``W: (in, out)``."""

    def __init__(self, in_features: int, out_features: int, rng: SeedLike = None, bias: bool = True):
        super().__init__()
        rng = as_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(glorot_uniform((in_features, out_features), rng), "linear.weight")
        self.bias = Parameter(zeros_init((out_features,)), "linear.bias") if bias else None
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape[-1] != self.in_features:
            raise ValueError(f"Linear expected last dim {self.in_features}, got {x.shape}")
        self._x = x
        y = x @ self.weight.data
        if self.bias is not None:
            y = y + self.bias.data
        return y

    def backward(self, dy: np.ndarray) -> np.ndarray:
        x = self._x
        if x is None:
            raise RuntimeError("backward called before forward")
        # Support (N, in) and (N, T, in) inputs uniformly.
        x2 = x.reshape(-1, self.in_features)
        dy2 = dy.reshape(-1, self.out_features)
        self.weight.grad += x2.T @ dy2
        if self.bias is not None:
            self.bias.grad += dy2.sum(axis=0)
        return (dy2 @ self.weight.data.T).reshape(x.shape)


class Conv2D(Module):
    """2-D convolution over NCHW inputs, computed as im2col + matmul."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        pad: int = 0,
        rng: SeedLike = None,
    ):
        super().__init__()
        rng = as_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.pad = pad
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(glorot_uniform(shape, rng), "conv.weight")
        self.bias = Parameter(zeros_init((out_channels,)), "conv.bias")
        self._cols: Optional[np.ndarray] = None
        self._x_shape: Optional[tuple] = None
        self._out_hw: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(f"Conv2D expected (N,{self.in_channels},H,W), got {x.shape}")
        k = self.kernel_size
        cols, out_h, out_w = im2col(x, k, k, self.stride, self.pad)
        self._cols, self._x_shape, self._out_hw = cols, x.shape, (out_h, out_w)
        w2 = self.weight.data.reshape(self.out_channels, -1)  # (out_c, c*k*k)
        y = cols @ w2.T + self.bias.data  # (N*oh*ow, out_c)
        n = x.shape[0]
        return y.reshape(n, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._cols is None:
            raise RuntimeError("backward called before forward")
        n, _, out_h, out_w = dy.shape
        dy2 = dy.transpose(0, 2, 3, 1).reshape(-1, self.out_channels)  # (N*oh*ow, out_c)
        self.weight.grad += (dy2.T @ self._cols).reshape(self.weight.shape)
        self.bias.grad += dy2.sum(axis=0)
        dcols = dy2 @ self.weight.data.reshape(self.out_channels, -1)
        k = self.kernel_size
        return col2im(dcols, self._x_shape, k, k, self.stride, self.pad)


class MaxPool2D(Module):
    """Max pooling with square window; window must tile the input exactly."""

    def __init__(self, pool_size: int = 2):
        super().__init__()
        self.pool_size = pool_size
        self._mask: Optional[np.ndarray] = None
        self._x_shape: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        p = self.pool_size
        if h % p or w % p:
            raise ValueError(f"MaxPool2D({p}) requires H,W divisible by {p}, got {h}x{w}")
        xr = x.reshape(n, c, h // p, p, w // p, p)
        y = xr.max(axis=(3, 5))
        # Mask of argmax positions for routing gradients. Ties split the
        # gradient, which keeps the op's Jacobian exact for gradcheck.
        # np.equal writes the float mask directly (bool -> float64 is a
        # safe cast), so only one full-size temporary exists at a time.
        expanded = y[:, :, :, None, :, None]
        mask = np.empty(xr.shape, dtype=np.float64)
        np.equal(xr, expanded, out=mask)
        mask /= mask.sum(axis=(3, 5), keepdims=True)
        self._mask, self._x_shape = mask, x.shape
        return y

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        p = self.pool_size
        dyr = dy[:, :, :, None, :, None]
        dx = (self._mask * dyr).reshape(self._x_shape)
        return dx


class Flatten(Module):
    """Collapse all but the batch dimension."""

    def __init__(self) -> None:
        super().__init__()
        self._x_shape: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        return dy.reshape(self._x_shape)


class ReLU(Module):
    """Rectified linear unit."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        # Copy + in-place multiply by the bool mask: one output allocation,
        # no np.where broadcast machinery on the hot path.
        out = x.astype(np.float64, copy=True)
        out *= self._mask
        return out

    def backward(self, dy: np.ndarray) -> np.ndarray:
        return dy * self._mask


class Tanh(Module):
    """Hyperbolic tangent."""

    def __init__(self) -> None:
        super().__init__()
        self._y: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._y = np.tanh(x)
        return self._y

    def backward(self, dy: np.ndarray) -> np.ndarray:
        return dy * (1.0 - self._y**2)


class Sigmoid(Module):
    """Logistic sigmoid."""

    def __init__(self) -> None:
        super().__init__()
        self._y: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        # Stable piecewise formulation avoids overflow in exp.
        out = np.empty_like(x)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out[~pos] = ex / (1.0 + ex)
        self._y = out
        return out

    def backward(self, dy: np.ndarray) -> np.ndarray:
        return dy * self._y * (1.0 - self._y)


class Dropout(Module):
    """Inverted dropout; identity in eval mode.

    Requires an explicit generator so training remains reproducible.
    """

    def __init__(self, rate: float, rng: SeedLike = None):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self.rng = as_rng(rng)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return dy
        return dy * self._mask


class Embedding(Module):
    """Token-id lookup table: ``(N, T)`` int ids -> ``(N, T, dim)``."""

    def __init__(self, vocab_size: int, dim: int, rng: SeedLike = None):
        super().__init__()
        rng = as_rng(rng)
        self.vocab_size = vocab_size
        self.dim = dim
        self.weight = Parameter(normal_init((vocab_size, dim), rng, std=0.1), "embedding.weight")
        self._ids: Optional[np.ndarray] = None
        self._dx_zero: Optional[np.ndarray] = None

    def forward(self, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids)
        if not np.issubdtype(ids.dtype, np.integer):
            raise TypeError(f"Embedding expects integer ids, got dtype {ids.dtype}")
        if ids.size and (ids.min() < 0 or ids.max() >= self.vocab_size):
            raise ValueError(f"token id out of range [0, {self.vocab_size})")
        self._ids = ids
        return self.weight.data[ids]

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._ids is None:
            raise RuntimeError("backward called before forward")
        np.add.at(self.weight.grad, self._ids.ravel(), dy.reshape(-1, self.dim))
        # Ids are not differentiable; return a zero placeholder of id shape,
        # cached by shape so repeated same-shape batches don't re-allocate.
        if self._dx_zero is None or self._dx_zero.shape != self._ids.shape:
            self._dx_zero = np.zeros(self._ids.shape, dtype=np.float64)
        else:
            self._dx_zero.fill(0.0)
        return self._dx_zero
