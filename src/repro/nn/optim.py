"""First-order optimizers operating on a module's parameters.

The paper's client optimizer is SGD with momentum and weight decay
(Appendix B); Adam is included both for completeness and because the server
FedAdam update reuses its moment arithmetic (see :mod:`repro.fl.server`).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.nn.module import Module, Parameter


class Optimizer:
    """Base optimizer bound to a fixed parameter list."""

    def __init__(self, params: List[Parameter], lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not params:
            raise ValueError("optimizer needs at least one parameter")
        self.params = list(params)
        self.lr = lr

    @classmethod
    def for_module(cls, module: Module, **kwargs) -> "Optimizer":
        """Construct for all parameters of ``module``."""
        return cls(module.parameters(), **kwargs)

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


class SGD(Optimizer):
    """SGD with classical momentum and decoupled weight decay.

    ``v <- momentum * v + grad + weight_decay * w``; ``w <- w - lr * v``.
    This is the client-side optimizer in every experiment.
    """

    def __init__(
        self,
        params: List[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0.0:
            raise ValueError(f"weight_decay must be >= 0, got {weight_decay}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for p in self.params:
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v = self._velocity.get(id(p))
                if v is None:
                    v = np.zeros_like(p.data)
                v = self.momentum * v + grad
                self._velocity[id(p)] = v
                update = v
            else:
                update = grad
            p.data -= self.lr * update


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        params: List[Parameter],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        if not 0.0 <= beta1 < 1.0:
            raise ValueError(f"beta1 must be in [0, 1), got {beta1}")
        if not 0.0 <= beta2 < 1.0:
            raise ValueError(f"beta2 must be in [0, 1), got {beta2}")
        self.beta1, self.beta2, self.eps = beta1, beta2, eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1**self._t
        bias2 = 1.0 - b2**self._t
        for p in self.params:
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m = self._m.get(id(p))
            v = self._v.get(id(p))
            if m is None:
                m = np.zeros_like(p.data)
                v = np.zeros_like(p.data)
            m = b1 * m + (1 - b1) * grad
            v = b2 * v + (1 - b2) * grad**2
            self._m[id(p)], self._v[id(p)] = m, v
            p.data -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)
