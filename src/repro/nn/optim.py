"""First-order optimizers operating on a module's parameters.

The paper's client optimizer is SGD with momentum and weight decay
(Appendix B); Adam is included both for completeness and because the server
FedAdam update reuses its moment arithmetic (see :mod:`repro.fl.server`).

The fused slab kernels (:func:`fused_sgd_step`, :class:`FlatSGD`,
:func:`copy_slab_rows`, :func:`perturb_rows`) obtain their array ops
through the :mod:`repro.nn.backend` shim and are dtype-polymorphic: the
buffers they receive carry the slab's compute dtype, and scalar
hyperparameters stay in that dtype under NumPy's weak scalar promotion.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.nn.backend import xp as np
from repro.nn.module import Module, Parameter

#: A hyperparameter that is either one scalar for the whole buffer or a
#: per-row ``(R,)`` vector for a stacked ``(R, P)`` slab.
RowHP = Union[float, np.ndarray]


def _as_row_hp(value: RowHP, name: str, params: np.ndarray) -> tuple:
    """Normalise a scalar-or-per-row hyperparameter for slab ufunc calls.

    Returns ``(factor, active)``: ``factor`` broadcasts against ``params``
    (the scalar itself, or the vector reshaped to a column), and ``active``
    is True when any row's value is nonzero (gates the optional branches
    exactly as scalar truthiness used to).
    """
    if isinstance(value, np.ndarray):
        if value.shape != (params.shape[0],):
            raise ValueError(
                f"per-row {name} must be shape ({params.shape[0]},), got {value.shape}"
            )
        return value.reshape((-1,) + (1,) * (params.ndim - 1)), bool(np.any(value))
    return value, bool(value)


class Optimizer:
    """Base optimizer bound to a fixed parameter list."""

    def __init__(self, params: List[Parameter], lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not params:
            raise ValueError("optimizer needs at least one parameter")
        self.params = list(params)
        self.lr = lr

    @classmethod
    def for_module(cls, module: Module, **kwargs) -> "Optimizer":
        """Construct for all parameters of ``module``."""
        return cls(module.parameters(), **kwargs)

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


class SGD(Optimizer):
    """SGD with classical momentum and decoupled weight decay.

    ``v <- momentum * v + grad + weight_decay * w``; ``w <- w - lr * v``.
    This is the client-side optimizer in every experiment.
    """

    def __init__(
        self,
        params: List[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0.0:
            raise ValueError(f"weight_decay must be >= 0, got {weight_decay}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for p in self.params:
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v = self._velocity.get(id(p))
                if v is None:
                    v = np.zeros_like(p.data)
                v = self.momentum * v + grad
                self._velocity[id(p)] = v
                update = v
            else:
                update = grad
            p.data -= self.lr * update


def fused_sgd_step(
    params: np.ndarray,
    grads: np.ndarray,
    lr: RowHP,
    momentum: RowHP = 0.0,
    weight_decay: RowHP = 0.0,
    velocity: Optional[np.ndarray] = None,
    work: Optional[np.ndarray] = None,
) -> None:
    """One SGD update over a whole flat (or stacked) buffer, in place.

    Applies exactly :class:`SGD`'s rule — ``v <- momentum * v + grad +
    weight_decay * w``; ``w <- w - lr * v`` — as a handful of whole-buffer
    ufunc calls instead of a Python loop over parameters. Because the rule
    is elementwise (and addition is commutative), the result is
    bit-identical to running :class:`SGD` over any per-parameter slicing
    of the same buffers.

    ``lr``/``momentum``/``weight_decay`` may each be a scalar or, for a
    stacked ``(R, P)`` slab, a per-row ``(R,)`` vector — the fused trial
    runner trains many configurations' rows in one slab this way. A
    per-row value broadcasts as a column, so every element of row ``r``
    sees the same scalar arithmetic the scalar path applies, making the
    vector path row-for-row bit-identical to R scalar calls (one caveat:
    a row with ``momentum == 0`` inside a mixed vector still routes
    through the velocity buffer, which preserves values but can flip the
    sign of a ``-0.0`` gradient — beneath every documented tolerance).

    ``params`` is updated in place. ``velocity`` (required iff any row's
    ``momentum`` is nonzero) is the momentum buffer, also updated in
    place; pass the same buffer to successive calls. ``grads`` is never
    mutated. ``work`` (same shape, scratch) makes the step allocation-free.
    """
    if work is not None and work.shape != params.shape:
        raise ValueError(f"work buffer shape {work.shape} != params shape {params.shape}")
    lr, _ = _as_row_hp(lr, "lr", params)
    momentum, momentum_any = _as_row_hp(momentum, "momentum", params)
    weight_decay, weight_decay_any = _as_row_hp(weight_decay, "weight_decay", params)
    if weight_decay_any:
        if work is None:
            grads = grads + weight_decay * params
        else:
            np.multiply(params, weight_decay, out=work)
            work += grads
            grads = work
    if momentum_any:
        if velocity is None:
            raise ValueError("momentum > 0 requires a velocity buffer")
        velocity *= momentum
        velocity += grads
        update = velocity
    else:
        update = grads
    if update is work:
        # The scratch already holds the update; scale it in place.
        work *= lr
        params -= work
    elif work is None:
        params -= lr * update
    else:
        np.multiply(update, lr, out=work)
        params -= work


def copy_slab_rows(buffers, src, dst) -> None:
    """Exploit-style in-place row copies across row-aligned buffers.

    ``buffers`` is a sequence of arrays sharing one leading (row) axis — a
    stacked ``(R, P)`` parameter slab plus any per-row ``(R,)``
    hyperparameter vectors (the :data:`RowHP` form ``fused_sgd_step``
    broadcasts per slab row). For each pair ``src[j] -> dst[j]``, row
    ``dst[j]`` of every buffer is overwritten with row ``src[j]`` — the
    population tuners' *exploit* move, applied to parameters and
    hyperparameters in one call so the copied state stays consistent.

    ``src`` and ``dst`` must be disjoint (a row cannot be both survivor
    and victim in one exploit step) and ``dst`` rows unique.
    """
    buffers = list(buffers)
    src = np.asarray(src, dtype=np.intp)
    dst = np.asarray(dst, dtype=np.intp)
    if src.shape != dst.shape or src.ndim != 1:
        raise ValueError(f"src/dst must be 1-D and equal length, got {src.shape}, {dst.shape}")
    if np.intersect1d(src, dst).size:
        raise ValueError("src and dst rows overlap; winners cannot also be overwritten")
    if len(np.unique(dst)) != dst.size:
        raise ValueError(f"dst rows must be unique, got {dst.tolist()}")
    rows = None
    for buf in buffers:
        if buf.ndim < 1:
            raise ValueError("buffers must have at least one (row) dimension")
        if rows is None:
            rows = buf.shape[0]
        elif buf.shape[0] != rows:
            raise ValueError(
                f"row-axis mismatch across buffers: {buf.shape[0]} vs {rows}"
            )
    for buf in buffers:
        buf[dst] = buf[src]


def perturb_rows(
    values: np.ndarray,
    rows,
    factors,
    low: Optional[float] = None,
    high: Optional[float] = None,
) -> None:
    """In-place multiplicative perturbation of selected rows of a per-row
    hyperparameter vector, with optional clipping into a valid domain.

    ``values[rows[j]] <- clip(values[rows[j]] * factors[j], low, high)`` —
    the population tuners' *explore* move over the ``(R,)`` lr / momentum
    / weight-decay vectors that :func:`fused_sgd_step` and
    :class:`FlatSGD` broadcast per slab row. Multiplicative factors keep
    sign-constrained knobs (positive lr, non-negative weight decay) in
    domain without per-knob special cases.
    """
    rows = np.asarray(rows, dtype=np.intp)
    factor_dtype = (
        values.dtype if np.issubdtype(values.dtype, np.floating) else np.float64
    )
    factors = np.asarray(factors, dtype=factor_dtype)
    if factors.shape != rows.shape:
        raise ValueError(f"factors shape {factors.shape} != rows shape {rows.shape}")
    perturbed = values[rows] * factors
    if low is not None or high is not None:
        np.clip(perturbed, low, high, out=perturbed)
    values[rows] = perturbed


class FlatSGD:
    """:class:`SGD` fused over one flat parameter buffer.

    Where :class:`SGD` loops over a module's parameter list, this operates
    on a single ``(P,)`` vector — or a stacked ``(C, P)`` slab holding C
    independent parameter copies with per-row momentum state — which is
    what the vectorized cohort trainer (:mod:`repro.fl.cohort`) runs local
    SGD on. Updates are bit-identical to the per-parameter loop.

    Each hyperparameter may also be a per-row ``(C,)`` vector, giving
    every slab row its own learning rate / momentum / weight decay — the
    trial-fused runner trains whole tuner rungs this way, one
    configuration per row group.
    """

    def __init__(self, lr: RowHP, momentum: RowHP = 0.0, weight_decay: RowHP = 0.0):
        if np.any(np.asarray(lr) <= 0):
            raise ValueError(f"learning rate must be positive, got {lr}")
        if np.any(np.asarray(momentum) < 0) or np.any(np.asarray(momentum) >= 1.0):
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if np.any(np.asarray(weight_decay) < 0):
            raise ValueError(f"weight_decay must be >= 0, got {weight_decay}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Optional[np.ndarray] = None

    def reset(self) -> None:
        """Drop momentum state (e.g. between federated rounds, where client
        momentum is per-invocation)."""
        self._velocity = None

    def step(self, params: np.ndarray, grads: np.ndarray) -> None:
        """Update ``params`` in place from ``grads`` (same shape)."""
        if params.shape != grads.shape:
            raise ValueError(
                f"shape mismatch: params {params.shape} vs grads {grads.shape}"
            )
        velocity = None
        if np.any(self.momentum):
            if self._velocity is None or self._velocity.shape != params.shape:
                self._velocity = np.zeros_like(params)
            velocity = self._velocity
        fused_sgd_step(
            params,
            grads,
            lr=self.lr,
            momentum=self.momentum,
            weight_decay=self.weight_decay,
            velocity=velocity,
        )


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        params: List[Parameter],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        if not 0.0 <= beta1 < 1.0:
            raise ValueError(f"beta1 must be in [0, 1), got {beta1}")
        if not 0.0 <= beta2 < 1.0:
            raise ValueError(f"beta2 must be in [0, 1), got {beta2}")
        self.beta1, self.beta2, self.eps = beta1, beta2, eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1**self._t
        bias2 = 1.0 - b2**self._t
        for p in self.params:
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m = self._m.get(id(p))
            v = self._v.get(id(p))
            if m is None:
                m = np.zeros_like(p.data)
                v = np.zeros_like(p.data)
            m = b1 * m + (1 - b1) * grad
            v = b2 * v + (1 - b2) * grad**2
            self._m[id(p)], self._v[id(p)] = m, v
            p.data -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)
