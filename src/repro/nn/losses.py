"""Classification losses returning ``(loss, dlogits)`` pairs.

Losses are plain functions (not Modules): they terminate the graph, so the
caller feeds ``dlogits`` straight into the model's ``backward``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.functional import log_softmax, softmax


def mse_loss(preds: np.ndarray, targets: np.ndarray) -> Tuple[float, np.ndarray]:
    """Mean squared error over every element of a ``(N, ...)`` batch.

    Returns ``(loss, dpreds)`` with ``dpreds = 2 (preds - targets) / size``
    so the caller can run ``model.backward(dpreds)`` directly, mirroring
    :func:`softmax_cross_entropy`.
    """
    targets = np.asarray(targets, dtype=np.float64)
    if preds.shape != targets.shape:
        raise ValueError(f"shape mismatch: preds {preds.shape} vs targets {targets.shape}")
    if preds.size == 0:
        raise ValueError("empty batch")
    diff = preds - targets
    loss = float(np.mean(diff**2))
    return loss, (2.0 / diff.size) * diff


def softmax_cross_entropy(logits: np.ndarray, labels: np.ndarray) -> Tuple[float, np.ndarray]:
    """Mean cross-entropy over a batch.

    Parameters
    ----------
    logits : ``(N, C)`` float array.
    labels : ``(N,)`` integer class ids.

    Returns
    -------
    ``(loss, dlogits)`` with ``dlogits`` already scaled by ``1/N`` so the
    caller can run ``model.backward(dlogits)`` directly.
    """
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise ValueError(f"logits must be (N, C), got {logits.shape}")
    n, c = logits.shape
    if labels.shape != (n,):
        raise ValueError(f"labels must be ({n},), got {labels.shape}")
    if n == 0:
        raise ValueError("empty batch")
    logp = log_softmax(logits, axis=1)
    loss = -logp[np.arange(n), labels].mean()
    dlogits = softmax(logits, axis=1)
    dlogits[np.arange(n), labels] -= 1.0
    dlogits /= n
    return float(loss), dlogits


def sequence_cross_entropy(
    logits: np.ndarray, labels: np.ndarray, mask: Optional[np.ndarray] = None
) -> Tuple[float, np.ndarray]:
    """Token-averaged cross-entropy for next-token prediction.

    Parameters
    ----------
    logits : ``(N, T, V)`` float array.
    labels : ``(N, T)`` integer token ids.
    mask : optional ``(N, T)`` array in {0, 1}; masked-out (0) positions —
        e.g. padding — contribute neither loss nor gradient. The loss is
        averaged over *unmasked tokens*, matching per-token perplexity.
    """
    if logits.ndim != 3:
        raise ValueError(f"logits must be (N, T, V), got {logits.shape}")
    n, t, v = logits.shape
    labels = np.asarray(labels)
    if labels.shape != (n, t):
        raise ValueError(f"labels must be ({n},{t}), got {labels.shape}")
    if mask is None:
        mask = np.ones((n, t), dtype=np.float64)
    else:
        mask = np.asarray(mask, dtype=np.float64)
        if mask.shape != (n, t):
            raise ValueError(f"mask must be ({n},{t}), got {mask.shape}")
    denom = mask.sum()
    if denom <= 0:
        raise ValueError("mask excludes every token")
    flat_logits = logits.reshape(n * t, v)
    flat_labels = labels.reshape(n * t)
    flat_mask = mask.reshape(n * t)
    logp = log_softmax(flat_logits, axis=1)
    token_nll = -logp[np.arange(n * t), flat_labels]
    loss = float((token_nll * flat_mask).sum() / denom)
    dflat = softmax(flat_logits, axis=1)
    dflat[np.arange(n * t), flat_labels] -= 1.0
    dflat *= (flat_mask / denom)[:, None]
    return loss, dflat.reshape(n, t, v)
