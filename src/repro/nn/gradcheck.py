"""Numerical gradient checking for modules and losses.

Used heavily by the test suite: every layer's analytic backward pass is
validated against central finite differences.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from repro.nn.module import Module


def numerical_gradient(
    f: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of a scalar function at ``x``.

    Perturbs elements through multi-indexing rather than ``ravel`` so it
    works on non-contiguous arrays too (``ravel`` would silently copy
    them) — e.g. the slab-view parameters of ``repro.nn.stacked``.
    """
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    for idx in np.ndindex(x.shape):
        orig = x[idx]
        x[idx] = orig + eps
        f_plus = f(x)
        x[idx] = orig - eps
        f_minus = f(x)
        x[idx] = orig
        grad[idx] = (f_plus - f_minus) / (2.0 * eps)
    return grad


def gradcheck_module(
    module: Module,
    x: np.ndarray,
    loss_weights: np.ndarray = None,
    eps: float = 1e-6,
    rtol: float = 1e-4,
    atol: float = 1e-6,
    check_input_grad: bool = True,
) -> Tuple[float, float]:
    """Validate a module's backward pass against finite differences.

    The scalar objective is ``sum(loss_weights * module(x))`` with fixed
    random ``loss_weights``; this exercises every output element. Checks both
    parameter gradients and (optionally) the input gradient. Returns the
    maximum absolute error observed for (params, input); raises
    ``AssertionError`` on mismatch.

    Note: only valid for piecewise-smooth modules away from kinks; tests
    draw inputs from continuous distributions so kink hits have measure ~0.
    """
    x = np.asarray(x, dtype=np.float64)
    probe_out = module.forward(x)
    if loss_weights is None:
        rng = np.random.default_rng(0)
        loss_weights = rng.normal(size=probe_out.shape)

    def objective_from_current_state() -> float:
        return float((module.forward(x) * loss_weights).sum())

    # Analytic gradients.
    module.zero_grad()
    out = module.forward(x)
    dx = module.backward(loss_weights.astype(np.float64))
    analytic_param_grads = [p.grad.copy() for p in module.parameters()]

    # Numerical parameter gradients.
    max_param_err = 0.0
    for p, analytic in zip(module.parameters(), analytic_param_grads):
        def param_objective(pdata: np.ndarray, _p=p) -> float:
            return objective_from_current_state()

        numeric = numerical_gradient(param_objective, p.data, eps=eps)
        err = np.abs(numeric - analytic)
        tol = atol + rtol * np.abs(numeric)
        if not np.all(err <= tol):
            worst = float(err.max())
            raise AssertionError(
                f"parameter gradient mismatch for {p.name}: max abs err {worst:.3e}"
            )
        max_param_err = max(max_param_err, float(err.max()) if err.size else 0.0)

    max_input_err = 0.0
    if check_input_grad and np.issubdtype(x.dtype, np.floating):
        def input_objective(xv: np.ndarray) -> float:
            return float((module.forward(xv) * loss_weights).sum())

        numeric_dx = numerical_gradient(input_objective, x.copy(), eps=eps)
        err = np.abs(numeric_dx - dx)
        tol = atol + rtol * np.abs(numeric_dx)
        if not np.all(err <= tol):
            raise AssertionError(f"input gradient mismatch: max abs err {float(err.max()):.3e}")
        max_input_err = float(err.max()) if err.size else 0.0

    return max_param_err, max_input_err
