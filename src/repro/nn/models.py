"""Model factories matching the paper's architectures.

The paper trains (a) 2-layer CNNs for image classification on
CIFAR10/FEMNIST and (b) 2-layer LSTMs with tied embedding/hidden width for
next-token prediction on StackOverflow/Reddit. These factories build
scaled-down versions of the same shapes; all widths are arguments so the
test/small/paper presets can size them.
"""

from __future__ import annotations

from typing import Sequence

from repro.nn.layers import Conv2D, Dropout, Embedding, Flatten, Linear, MaxPool2D, ReLU
from repro.nn.module import Sequential
from repro.nn.recurrent import LSTM
from repro.utils.rng import SeedLike, as_rng


def make_mlp(
    in_features: int,
    num_classes: int,
    hidden: Sequence[int] = (32,),
    rng: SeedLike = None,
    dropout: float = 0.0,
) -> Sequential:
    """Multi-layer perceptron for flat feature vectors.

    ``dropout`` > 0 inserts an inverted-dropout layer after every hidden
    ReLU. All dropout layers share the factory's generator (the common
    single-``rng`` idiom), which the stacked engine trains via its
    shared-generator mask pre-draw — no serial fallback.
    """
    rng = as_rng(rng)
    layers = []
    prev = in_features
    for width in hidden:
        layers.append(Linear(prev, width, rng))
        layers.append(ReLU())
        if dropout > 0.0:
            layers.append(Dropout(dropout, rng))
        prev = width
    layers.append(Linear(prev, num_classes, rng))
    return Sequential(*layers)


def make_cnn(
    image_hw: int,
    in_channels: int,
    num_classes: int,
    channels: Sequence[int] = (8, 16),
    rng: SeedLike = None,
) -> Sequential:
    """The paper's 2-layer CNN: [conv-relu-pool] x 2 -> linear head.

    ``image_hw`` must be divisible by ``2 ** len(channels)`` so the pooling
    stages tile exactly.
    """
    rng = as_rng(rng)
    if image_hw % (2 ** len(channels)) != 0:
        raise ValueError(
            f"image size {image_hw} not divisible by 2^{len(channels)} pooling stages"
        )
    layers = []
    prev_c = in_channels
    hw = image_hw
    for c in channels:
        layers.append(Conv2D(prev_c, c, kernel_size=3, stride=1, pad=1, rng=rng))
        layers.append(ReLU())
        layers.append(MaxPool2D(2))
        prev_c = c
        hw //= 2
    layers.append(Flatten())
    layers.append(Linear(prev_c * hw * hw, num_classes, rng))
    return Sequential(*layers)


class LanguageModel(Sequential):
    """Embedding -> multi-layer LSTM -> tied-width linear head.

    Input is ``(N, T)`` integer token ids; output is ``(N, T, vocab)``
    next-token logits. Kept as a named class so downstream code can branch
    on model kind when needed.
    """

    def __init__(
        self,
        vocab_size: int,
        embed_dim: int,
        hidden: int,
        num_layers: int,
        rng: SeedLike = None,
        dropout: float = 0.0,
    ):
        rng = as_rng(rng)
        layers = [
            Embedding(vocab_size, embed_dim, rng),
            LSTM(embed_dim, hidden, num_layers=num_layers, rng=rng),
        ]
        if dropout > 0.0:
            # Shares the factory generator with any other dropout layers,
            # matching the shared-generator pre-draw path of the slab.
            layers.append(Dropout(dropout, rng))
        layers.append(Linear(hidden, vocab_size, rng))
        super().__init__(*layers)
        self.vocab_size = vocab_size
        self.embed_dim = embed_dim
        self.hidden = hidden
        self.num_layers_lstm = num_layers


def make_lstm_lm(
    vocab_size: int,
    embed_dim: int = 16,
    hidden: int = 16,
    num_layers: int = 2,
    rng: SeedLike = None,
    dropout: float = 0.0,
) -> LanguageModel:
    """The paper's 2-layer LSTM language model (embedding size == hidden size
    in the paper; configurable here). ``dropout`` > 0 regularizes the LSTM
    output before the head."""
    return LanguageModel(vocab_size, embed_dim, hidden, num_layers, rng, dropout=dropout)
