"""Recurrent layers: a gradient-checked LSTM.

The paper's text models are 2-layer LSTMs with embedding/hidden size 128
predicting the next token. :class:`LSTM` supports arbitrary depth; time
steps are looped in Python (sequences are short) while each step is fully
vectorized over the batch.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.nn.initializers import glorot_uniform, orthogonal, zeros_init
from repro.nn.module import Module, Parameter
from repro.utils.rng import SeedLike, as_rng


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


class LSTMCell(Module):
    """Single LSTM step. Gate layout in the fused matrices: [i, f, g, o]."""

    def __init__(self, input_size: int, hidden_size: int, rng: SeedLike = None):
        super().__init__()
        rng = as_rng(rng)
        self.input_size = input_size
        self.hidden_size = hidden_size
        h = hidden_size
        self.w_x = Parameter(glorot_uniform((input_size, 4 * h), rng), "lstm.w_x")
        # Orthogonal blocks per gate for the recurrent matrix.
        w_h = np.concatenate([orthogonal((h, h), rng) for _ in range(4)], axis=1)
        self.w_h = Parameter(w_h, "lstm.w_h")
        bias = zeros_init((4 * h,))
        bias[h : 2 * h] = 1.0  # forget-gate bias init stabilises early training
        self.bias = Parameter(bias, "lstm.bias")

    def step(
        self, x_t: np.ndarray, h_prev: np.ndarray, c_prev: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, tuple]:
        """One time step. Returns ``(h, c, cache)`` where cache feeds backward."""
        h_sz = self.hidden_size
        gates = x_t @ self.w_x.data + h_prev @ self.w_h.data + self.bias.data
        i = _sigmoid(gates[:, 0 * h_sz : 1 * h_sz])
        f = _sigmoid(gates[:, 1 * h_sz : 2 * h_sz])
        g = np.tanh(gates[:, 2 * h_sz : 3 * h_sz])
        o = _sigmoid(gates[:, 3 * h_sz : 4 * h_sz])
        c = f * c_prev + i * g
        tanh_c = np.tanh(c)
        h = o * tanh_c
        cache = (x_t, h_prev, c_prev, i, f, g, o, tanh_c)
        return h, c, cache

    def step_backward(
        self, dh: np.ndarray, dc: np.ndarray, cache: tuple
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Backward through one step; accumulates parameter grads.

        Takes gradients w.r.t. this step's ``h`` and ``c`` outputs; returns
        ``(dx_t, dh_prev, dc_prev)``.
        """
        x_t, h_prev, c_prev, i, f, g, o, tanh_c = cache
        do = dh * tanh_c
        dc_total = dc + dh * o * (1.0 - tanh_c**2)
        di = dc_total * g
        df = dc_total * c_prev
        dg = dc_total * i
        dc_prev = dc_total * f
        # Through the gate nonlinearities.
        dgates = np.concatenate(
            [
                di * i * (1.0 - i),
                df * f * (1.0 - f),
                dg * (1.0 - g**2),
                do * o * (1.0 - o),
            ],
            axis=1,
        )
        self.w_x.grad += x_t.T @ dgates
        self.w_h.grad += h_prev.T @ dgates
        self.bias.grad += dgates.sum(axis=0)
        dx_t = dgates @ self.w_x.data.T
        dh_prev = dgates @ self.w_h.data.T
        return dx_t, dh_prev, dc_prev

    # A cell is not used as a standalone layer in a Sequential; the LSTM
    # wrapper below drives it. Forward/backward raise to catch misuse.
    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - guard
        raise RuntimeError("LSTMCell must be driven by LSTM, not called directly")

    def backward(self, dy: np.ndarray) -> np.ndarray:  # pragma: no cover - guard
        raise RuntimeError("LSTMCell must be driven by LSTM, not called directly")


class LSTM(Module):
    """Multi-layer LSTM over ``(N, T, D)`` inputs returning all hidden states.

    Initial states are zero for every sequence (stateless), matching the
    paper's per-example training setup.
    """

    def __init__(self, input_size: int, hidden_size: int, num_layers: int = 1, rng: SeedLike = None):
        super().__init__()
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        rng = as_rng(rng)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.cells = [
            LSTMCell(input_size if layer == 0 else hidden_size, hidden_size, rng)
            for layer in range(num_layers)
        ]
        self._caches: Optional[List[List[tuple]]] = None
        self._t_steps: int = 0
        self._batch: int = 0

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 3 or x.shape[2] != self.input_size:
            raise ValueError(f"LSTM expected (N,T,{self.input_size}), got {x.shape}")
        n, t_steps, _ = x.shape
        self._t_steps, self._batch = t_steps, n
        self._caches = [[] for _ in self.cells]
        h_sz = self.hidden_size
        inputs = x
        for layer, cell in enumerate(self.cells):
            h = np.zeros((n, h_sz))
            c = np.zeros((n, h_sz))
            outputs = np.empty((n, t_steps, h_sz))
            for t in range(t_steps):
                h, c, cache = cell.step(inputs[:, t, :], h, c)
                self._caches[layer].append(cache)
                outputs[:, t, :] = h
            inputs = outputs
        return inputs

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._caches is None:
            raise RuntimeError("backward called before forward")
        n, t_steps, h_sz = self._batch, self._t_steps, self.hidden_size
        if dy.shape != (n, t_steps, h_sz):
            raise ValueError(f"LSTM backward expected {(n, t_steps, h_sz)}, got {dy.shape}")
        dinputs = dy
        for layer in range(self.num_layers - 1, -1, -1):
            cell = self.cells[layer]
            in_sz = cell.input_size
            dx = np.zeros((n, t_steps, in_sz))
            dh = np.zeros((n, h_sz))
            dc = np.zeros((n, h_sz))
            for t in range(t_steps - 1, -1, -1):
                dh_total = dh + dinputs[:, t, :]
                dx_t, dh, dc = cell.step_backward(dh_total, dc, self._caches[layer][t])
                dx[:, t, :] = dx_t
            dinputs = dx
        return dinputs
