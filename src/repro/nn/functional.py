"""Stateless numerical building blocks (softmax, one-hot, im2col)."""

from __future__ import annotations

from typing import Tuple

import numpy as np


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax along ``axis``."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Integer labels ``(N,)`` -> one-hot ``(N, num_classes)`` float64."""
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError(f"labels out of range [0, {num_classes})")
    out = np.zeros((labels.size, num_classes), dtype=np.float64)
    out[np.arange(labels.size), labels] = 1.0
    return out


def _out_size(size: int, kernel: int, stride: int, pad: int) -> int:
    return (size + 2 * pad - kernel) // stride + 1


def im2col(
    x: np.ndarray, kh: int, kw: int, stride: int = 1, pad: int = 0
) -> Tuple[np.ndarray, int, int]:
    """Unfold NCHW images into patch columns for convolution-as-matmul.

    Returns ``(cols, out_h, out_w)`` where ``cols`` has shape
    ``(N * out_h * out_w, C * kh * kw)``. The heavy lifting is a strided
    view + reshape, so there are no Python loops over pixels.
    """
    n, c, h, w = x.shape
    out_h = _out_size(h, kh, stride, pad)
    out_w = _out_size(w, kw, stride, pad)
    if out_h <= 0 or out_w <= 0:
        raise ValueError(f"kernel ({kh}x{kw}) too large for input ({h}x{w}) with pad={pad}")
    if pad > 0:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant")
    sn, sc, sh, sw = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    # (N, out_h, out_w, C, kh, kw) -> rows are receptive fields.
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * out_h * out_w, c * kh * kw)
    return np.ascontiguousarray(cols), out_h, out_w


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """Fold patch-column gradients back into an NCHW gradient (im2col adjoint).

    Overlapping patches accumulate, which is exactly the adjoint of the
    strided-view read in :func:`im2col`.
    """
    n, c, h, w = x_shape
    out_h = _out_size(h, kh, stride, pad)
    out_w = _out_size(w, kw, stride, pad)
    cols = cols.reshape(n, out_h, out_w, c, kh, kw).transpose(0, 3, 1, 2, 4, 5)
    dx = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    # Loop over the (small) kernel footprint; each step is a vectorized add
    # over all output positions at once.
    for i in range(kh):
        for j in range(kw):
            dx[:, :, i : i + stride * out_h : stride, j : j + stride * out_w : stride] += cols[
                :, :, :, :, i, j
            ]
    if pad > 0:
        dx = dx[:, :, pad : pad + h, pad : pad + w]
    return dx
