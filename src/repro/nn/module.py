"""Module/Parameter base classes and flat parameter-vector access."""

from __future__ import annotations

from typing import Iterator, List

import numpy as np


class Parameter:
    """A trainable tensor: ``data`` plus an accumulated gradient ``grad``.

    ``name`` is informational (used in error messages and debugging dumps).
    """

    __slots__ = ("data", "grad", "name")

    def __init__(self, data: np.ndarray, name: str = "param"):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.name = name

    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def size(self) -> int:
        return self.data.size

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Parameter({self.name}, shape={self.data.shape})"


class Module:
    """Base class for layers and models.

    The contract:

    - ``forward(x)`` computes the output and caches whatever the backward
      pass needs.
    - ``backward(dy)`` consumes the gradient of the loss w.r.t. the output,
      *accumulates* parameter gradients into ``p.grad``, and returns the
      gradient w.r.t. the input.
    - ``parameters()`` yields every :class:`Parameter` in the subtree.

    ``train`` toggles training-time behaviour (dropout). Layers must be
    usable for repeated forward/backward cycles without re-allocation of
    parameters, since federated clients reuse one model object across rounds.
    """

    def __init__(self) -> None:
        self.training: bool = True

    # -- interface ---------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, dy: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> List[Parameter]:
        """Return all parameters of this module (in a stable order)."""
        params: List[Parameter] = []
        for attr in vars(self).values():
            if isinstance(attr, Parameter):
                params.append(attr)
            elif isinstance(attr, Module):
                params.extend(attr.parameters())
            elif isinstance(attr, (list, tuple)):
                for item in attr:
                    if isinstance(item, Parameter):
                        params.append(item)
                    elif isinstance(item, Module):
                        params.extend(item.parameters())
        return params

    # -- conveniences ------------------------------------------------------
    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects e.g. Dropout)."""
        self.training = mode
        for attr in vars(self).values():
            if isinstance(attr, Module):
                attr.train(mode)
            elif isinstance(attr, (list, tuple)):
                for item in attr:
                    if isinstance(item, Module):
                        item.train(mode)
        return self

    def eval(self) -> "Module":
        """Set inference mode recursively."""
        return self.train(False)

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.size for p in self.parameters())


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        if not layers:
            raise ValueError("Sequential requires at least one layer")
        self.layers = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, dy: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            dy = layer.backward(dy)
        return dy

    def __iter__(self) -> Iterator[Module]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, idx: int) -> Module:
        return self.layers[idx]


def get_flat_params(module: Module) -> np.ndarray:
    """Concatenate all parameters of ``module`` into one float64 vector.

    The ordering matches :meth:`Module.parameters` and is stable for a given
    architecture, which is what federated aggregation relies on.
    """
    params = module.parameters()
    if not params:
        return np.zeros(0, dtype=np.float64)
    return np.concatenate([p.data.ravel() for p in params])


def set_flat_params(module: Module, flat: np.ndarray) -> None:
    """Write ``flat`` back into the module's parameters (inverse of get)."""
    flat = np.asarray(flat, dtype=np.float64)
    expected = module.num_parameters()
    if flat.ndim != 1 or flat.size != expected:
        raise ValueError(f"expected flat vector of size {expected}, got shape {flat.shape}")
    offset = 0
    for p in module.parameters():
        chunk = flat[offset : offset + p.size]
        p.data[...] = chunk.reshape(p.shape)
        offset += p.size


def get_flat_grads(module: Module) -> np.ndarray:
    """Concatenate all parameter gradients into one vector."""
    params = module.parameters()
    if not params:
        return np.zeros(0, dtype=np.float64)
    return np.concatenate([p.grad.ravel() for p in params])
