"""Stacked (multi-copy) layers: lockstep compute over a leading client axis.

The vectorized cohort trainer (:mod:`repro.fl.cohort`) trains every client
of a federated round simultaneously. Each client holds its own copy of the
model parameters, so the compute primitive is a *stacked* layer: inputs
carry a leading copy axis ``C`` (``(C, B, ...)``) and parameters carry the
same axis (``(C, ...)``), with all C copies advanced by one batched kernel
call — e.g. ``StackedLinear`` is a single ``(C,B,d) @ (C,d,out)`` batched
matmul instead of C Python-level layer calls.

:class:`StackedModel` materializes C copies of a template
:class:`~repro.nn.module.Sequential`'s parameters as one contiguous
``(C, P)`` slab (P = flat parameter count, column order matching
:func:`~repro.nn.module.get_flat_params`). Layer parameters and gradients
are *views* into the slab and its gradient twin, so a fused optimizer step
on the slab (:func:`repro.nn.optim.fused_sgd_step`) updates every layer
in place with no gather/scatter.

Numerical contract: with no padding in play, every stacked kernel is
elementwise- or GEMM-per-slice-identical to its serial counterpart, so
copy ``c`` of a stacked forward/backward reproduces the serial model
bit-for-bit on the reference BLAS paths; the cohort trainer's equivalence
tests assert this directly. Padded rows (ragged batches) are excluded via
loss masks, which changes only summation *order* in per-client reductions
(documented tolerance in :mod:`tests.fl.test_cohort`).

Prefix activation: when the first input axis ``k`` is smaller than the
number of copies C, parameterised layers compute with the leading ``k``
parameter copies only (views, no copy). The cohort trainer uses this to
retire clients that have exhausted their local steps without re-building
the stack.

RNG-consuming layers (Dropout) keep their serial stream through a
*pre-draw*: :class:`StackedDropout` receives each copy's generator and
per-step real batch sizes up front and draws every mask of the round in
the exact order the serial loop would, so the generators' end states are
identical (the same trick the cohort trainer uses for batch
permutations). Models whose Dropout layers *share* one generator object
use the shared-generator mode instead: the trainer pre-draws the whole
round's masks eagerly in the serial interleaved order (client → step →
layer in forward order) and installs the finished streams via
:meth:`StackedDropout.install_masks`, so :func:`supports_stacking` is a
purely structural check — every model built from layers with stacked
counterparts trains on the slab. Integer-input (Embedding) and recurrent
(LSTM) layers have stacked counterparts too, so the paper's text models
train in lockstep.

Array ops route through the :mod:`repro.nn.backend` shim (``xp``), and
the slab dtype is a :class:`StackedModel` policy (float64 default, the
bit-exact serial reference; opt-in float32 halves slab memory). Scratch
buffers follow the input's dtype so float32 never silently upcasts.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Type

from repro.nn.backend import resolve_dtype
from repro.nn.backend import xp as np
from repro.nn.functional import col2im, im2col, log_softmax, softmax
from repro.nn.layers import (
    Conv2D,
    Dropout,
    Embedding,
    Flatten,
    Linear,
    MaxPool2D,
    ReLU,
    Sigmoid,
    Tanh,
)
from repro.nn.losses import mse_loss, sequence_cross_entropy, softmax_cross_entropy
from repro.nn.module import Module, Parameter, Sequential
from repro.nn.recurrent import LSTM, _sigmoid


class StackedLinear(Module):
    """C independent affine layers: ``y[c] = x[c] @ W[c] + b[c]``.

    ``weight`` is ``(C, in, out)``, ``bias`` ``(C, out)``; inputs are
    ``(k, B, in)`` with ``k <= C`` (prefix activation).
    """

    def eval_forward(self, x: np.ndarray, k: int, shared: bool) -> Tuple[np.ndarray, bool]:
        w = self.weight.data[:k]
        if shared:
            # One shared input for all k copies: matmul broadcasts the
            # (B*, in) matrix against the (k, in, out) weight stack, so
            # each copy runs the exact dgemm the serial layer would.
            x2 = x.reshape(-1, self.in_features)
            y = np.matmul(x2, w)
            if self.bias is not None:
                y += self.bias.data[:k, None, :]
            return y.reshape((k,) + x.shape[:-1] + (self.out_features,)), False
        x3 = x.reshape(k, -1, self.in_features)
        y = np.matmul(x3, w)
        if self.bias is not None:
            y += self.bias.data[:k, None, :]
        return y.reshape(x.shape[:-1] + (self.out_features,)), False

    def __init__(self, weight: np.ndarray, bias: Optional[np.ndarray]):
        super().__init__()
        if weight.ndim != 3:
            raise ValueError(f"stacked weight must be (C, in, out), got {weight.shape}")
        self.n_copies, self.in_features, self.out_features = weight.shape
        self.weight = Parameter(weight, "stacked_linear.weight")
        self.bias = Parameter(bias, "stacked_linear.bias") if bias is not None else None
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim < 3 or x.shape[-1] != self.in_features or x.shape[0] > self.n_copies:
            raise ValueError(
                f"StackedLinear expected (k<={self.n_copies}, B, ..., {self.in_features}), "
                f"got {x.shape}"
            )
        self._x = x
        k = x.shape[0]
        # (k, B, T, in) collapses to (k, B*T, in) for the batched matmul —
        # same row set as the serial layer's 2-D reshape, per copy.
        x3 = x.reshape(k, -1, self.in_features)
        y = np.matmul(x3, self.weight.data[:k])
        if self.bias is not None:
            y += self.bias.data[:k, None, :]
        return y.reshape(x.shape[:-1] + (self.out_features,))

    def backward(self, dy: np.ndarray) -> np.ndarray:
        x = self._x
        if x is None:
            raise RuntimeError("backward called before forward")
        k = x.shape[0]
        x3 = x.reshape(k, -1, self.in_features)
        dy3 = dy.reshape(k, -1, self.out_features)
        self.weight.grad[:k] += np.matmul(x3.transpose(0, 2, 1), dy3)
        if self.bias is not None:
            self.bias.grad[:k] += dy3.sum(axis=1)
        return np.matmul(dy3, self.weight.data[:k].transpose(0, 2, 1)).reshape(x.shape)


class StackedConv2D(Module):
    """C independent 2-D convolutions over ``(k, B, C_in, H, W)`` inputs.

    im2col runs once over the collapsed ``(k*B, ...)`` image stack (the
    unfold is per-image, so collapsing is exact); the per-copy weights then
    apply as one batched ``(k, B*oh*ow, ckk) @ (k, ckk, out_c)`` matmul.
    """

    def eval_forward(self, x: np.ndarray, k: int, shared: bool) -> Tuple[np.ndarray, bool]:
        ksz = self.kernel_size
        w2 = self.weight.data[:k].reshape(k, self.out_channels, -1)
        if shared:
            # The unfold is copy-independent, so run it once on the shared
            # batch and broadcast the column matrix across the k copies.
            b = x.shape[0]
            cols, out_h, out_w = im2col(x, ksz, ksz, self.stride, self.pad)
            y = np.matmul(cols, w2.transpose(0, 2, 1))  # (k, B*oh*ow, out_c)
        else:
            kk, b = x.shape[:2]
            cols, out_h, out_w = im2col(
                x.reshape((kk * b,) + x.shape[2:]), ksz, ksz, self.stride, self.pad
            )
            y = np.matmul(cols.reshape(kk, b * out_h * out_w, -1), w2.transpose(0, 2, 1))
        y += self.bias.data[:k, None, :]
        return y.reshape(k, b, out_h, out_w, self.out_channels).transpose(0, 1, 4, 2, 3), False

    def __init__(
        self,
        weight: np.ndarray,
        bias: np.ndarray,
        stride: int = 1,
        pad: int = 0,
    ):
        super().__init__()
        if weight.ndim != 5 or weight.shape[3] != weight.shape[4]:
            raise ValueError(
                f"stacked conv weight must be (C, out_c, in_c, k, k), got {weight.shape}"
            )
        self.n_copies, self.out_channels, self.in_channels, self.kernel_size, _ = weight.shape
        self.stride = stride
        self.pad = pad
        self.weight = Parameter(weight, "stacked_conv.weight")
        self.bias = Parameter(bias, "stacked_conv.bias")
        self._cols: Optional[np.ndarray] = None
        self._x_shape: Optional[tuple] = None
        self._out_hw: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 5 or x.shape[2] != self.in_channels or x.shape[0] > self.n_copies:
            raise ValueError(
                f"StackedConv2D expected (k<={self.n_copies}, B, {self.in_channels}, H, W), "
                f"got {x.shape}"
            )
        k, b = x.shape[:2]
        ksz = self.kernel_size
        cols, out_h, out_w = im2col(
            x.reshape((k * b,) + x.shape[2:]), ksz, ksz, self.stride, self.pad
        )
        cols = cols.reshape(k, b * out_h * out_w, -1)
        self._cols, self._x_shape, self._out_hw = cols, x.shape, (out_h, out_w)
        w2 = self.weight.data[:k].reshape(k, self.out_channels, -1)  # (k, out_c, ckk)
        y = np.matmul(cols, w2.transpose(0, 2, 1))  # (k, B*oh*ow, out_c)
        y += self.bias.data[:k, None, :]
        return y.reshape(k, b, out_h, out_w, self.out_channels).transpose(0, 1, 4, 2, 3)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._cols is None:
            raise RuntimeError("backward called before forward")
        k, b = self._x_shape[:2]
        out_h, out_w = self._out_hw
        dy2 = dy.transpose(0, 1, 3, 4, 2).reshape(k, b * out_h * out_w, self.out_channels)
        self.weight.grad[:k] += np.matmul(dy2.transpose(0, 2, 1), self._cols).reshape(
            (k,) + self.weight.shape[1:]
        )
        self.bias.grad[:k] += dy2.sum(axis=1)
        w2 = self.weight.data[:k].reshape(k, self.out_channels, -1)
        dcols = np.matmul(dy2, w2).reshape(k * b * out_h * out_w, -1)
        ksz = self.kernel_size
        dx = col2im(dcols, (k * b,) + self._x_shape[2:], ksz, ksz, self.stride, self.pad)
        return dx.reshape(self._x_shape)


class StackedMaxPool2D(MaxPool2D):
    """Max pooling over ``(k, B, C_in, H, W)``: pooling is per-window, so
    the serial kernel applies verbatim on the collapsed ``(k*B, ...)``
    image stack — one kernel to maintain, identical tie handling."""

    def __init__(self, pool_size: int = 2):
        super().__init__(pool_size)
        self._stack_shape: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        k, b = x.shape[:2]
        self._stack_shape = x.shape
        y = MaxPool2D.forward(self, x.reshape((k * b,) + x.shape[2:]))
        return y.reshape((k, b) + y.shape[1:])

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._stack_shape is None:
            raise RuntimeError("backward called before forward")
        k, b = self._stack_shape[:2]
        dx = MaxPool2D.backward(self, dy.reshape((k * b,) + dy.shape[2:]))
        return dx.reshape(self._stack_shape)

    def eval_forward(self, x: np.ndarray, k: int, shared: bool) -> Tuple[np.ndarray, bool]:
        # Pooling is per-window and parameter-free: a shared input stays
        # shared, and no argmax mask is cached.
        p = self.pool_size
        if shared:
            n, c, h, w = x.shape
            return x.reshape(n, c, h // p, p, w // p, p).max(axis=(3, 5)), True
        kk, b = x.shape[:2]
        x2 = x.reshape((kk * b,) + x.shape[2:])
        n, c, h, w = x2.shape
        y = x2.reshape(n, c, h // p, p, w // p, p).max(axis=(3, 5))
        return y.reshape((kk, b) + y.shape[1:]), False


class StackedFlatten(Module):
    """Collapse all but the copy and batch axes: ``(k, B, ...) -> (k, B, F)``."""

    def __init__(self) -> None:
        super().__init__()
        self._x_shape: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        return x.reshape(x.shape[0], x.shape[1], -1)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        return dy.reshape(self._x_shape)

    def eval_forward(self, x: np.ndarray, k: int, shared: bool) -> Tuple[np.ndarray, bool]:
        if shared:
            return x.reshape(x.shape[0], -1), True
        return x.reshape(x.shape[0], x.shape[1], -1), False


def _relu_eval(x: np.ndarray) -> np.ndarray:
    # Mirrors ReLU.forward exactly (copy + in-place bool-mask multiply),
    # including its NaN/inf propagation for diverged models. The compute
    # dtype follows the slab (float32 slabs stay float32).
    dt = x.dtype if np.issubdtype(x.dtype, np.floating) else np.float64
    out = x.astype(dt, copy=True)
    out *= x > 0
    return out


def _sigmoid_eval(x: np.ndarray) -> np.ndarray:
    # Mirrors Sigmoid.forward's stable piecewise formulation elementwise.
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


class StackedReLU(ReLU):
    """ReLU over ``(k, B, ...)`` — elementwise, so the serial kernel is
    already stacked; the subclass only documents the shape contract."""

    def eval_forward(self, x: np.ndarray, k: int, shared: bool) -> Tuple[np.ndarray, bool]:
        return _relu_eval(x), shared


class StackedTanh(Tanh):
    """Tanh over ``(k, B, ...)`` (elementwise; serial kernel reused)."""

    def eval_forward(self, x: np.ndarray, k: int, shared: bool) -> Tuple[np.ndarray, bool]:
        return np.tanh(x), shared


class StackedSigmoid(Sigmoid):
    """Sigmoid over ``(k, B, ...)`` (elementwise; serial kernel reused)."""

    def eval_forward(self, x: np.ndarray, k: int, shared: bool) -> Tuple[np.ndarray, bool]:
        return _sigmoid_eval(x), shared


class StackedDropout(Module):
    """Inverted dropout over ``(k, B, ...)`` with per-copy RNG streams.

    The serial :class:`~repro.nn.layers.Dropout` draws one keep mask per
    batch from the *layer's own* generator, so a cohort's serial loop
    consumes that stream client by client, step by step. Lockstep compute
    visits steps in a different order, so masks are **pre-drawn**: before
    a round the trainer calls :meth:`begin_round` with, per copy, the
    generator that copy's serial pass would draw from and the real
    (unpadded) batch size of each of its local steps, listed in serial
    visit order. The draws themselves happen lazily at the round's first
    forward (when the feature shape is known) but in exactly the serial
    order, so every generator's end state is bit-identical to the serial
    path's. Padded tail rows of a ragged step multiply by 1.0 (identity);
    the loss mask removes them from gradients.

    Shared-generator mode: when several Dropout layers draw from one
    generator object, the serial draw order interleaves *across layers*
    (client → step → layer in forward order), which per-layer lazy
    pre-draw cannot reproduce. The trainer then draws every mask of the
    round itself, in that interleaved order (using
    :meth:`begin_shape_probe` to learn each layer's feature shape
    without consuming RNG), and installs each layer's finished stream via
    :meth:`install_masks` — forward consumes the installed masks exactly
    as it would its own lazy draws.
    """

    def __init__(self, rate: float):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        # Plan entries, serial draw order: (rng, step_sizes, slot) — slot
        # is the copy's row position in the (sorted) slab.
        self._plan: Optional[List[tuple]] = None
        self._masks: Optional[List[List[np.ndarray]]] = None
        self._step = 0
        self._mult: Optional[np.ndarray] = None
        self._mult_buf: Optional[np.ndarray] = None  # grow-only scratch
        self._probe = False
        #: Feature shape observed by the last shape probe (see
        #: :meth:`begin_shape_probe`).
        self.probe_shape: Optional[tuple] = None

    def begin_round(self, plan: Sequence[tuple]) -> None:
        """Install the round's draw plan (see class docstring) and drop
        any masks from the previous round."""
        self._plan = list(plan)
        self._masks = None
        self._step = 0

    def begin_shape_probe(self) -> None:
        """Arm a one-shot shape probe: the next training forward records
        ``x.shape[2:]`` into :attr:`probe_shape` and passes ``x`` through
        untouched — no masks drawn, no generator consumed. The trainer
        uses this to learn per-layer feature shapes before an eager
        shared-generator pre-draw."""
        self._probe = True
        self.probe_shape = None

    def install_masks(self, masks: Sequence[Optional[List[np.ndarray]]]) -> None:
        """Install externally pre-drawn masks (shared-generator mode).

        ``masks[slot][t]`` is the keep mask of copy ``slot`` at its local
        step ``t``, already scaled by ``1/keep`` — exactly what
        :meth:`_draw_masks` would have produced, but drawn by the trainer
        in the serial interleaved order across all layers sharing a
        generator."""
        self._plan = []
        self._masks = list(masks)
        self._step = 0

    def set_step(self, t: int) -> None:
        """Select which lockstep step the next forward serves."""
        self._step = t

    def _draw_masks(self, feat_shape: tuple) -> None:
        keep = 1.0 - self.rate
        masks: List[Optional[List[np.ndarray]]] = [None] * len(self._plan)
        for rng, sizes, slot in self._plan:
            masks[slot] = [(rng.random((b,) + feat_shape) < keep) / keep for b in sizes]
        self._masks = masks

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self._probe:
            # One-shot shape probe: record the feature shape, touch nothing.
            self.probe_shape = x.shape[2:]
            self._probe = False
            self._mult = None
            return x
        if not self.training or self.rate == 0.0:
            self._mult = None
            return x
        if self._plan is None and self._masks is None:
            raise RuntimeError("StackedDropout.forward before begin_round")
        if self._masks is None:
            self._draw_masks(x.shape[2:])
        k, width = x.shape[:2]
        t = self._step
        # Grow-only scratch (the per-step loop is otherwise
        # allocation-free): mask rows are written in full, and only the
        # padded tail of a ragged step is set to 1.0 (identity).
        buf = self._mult_buf
        if (
            buf is None
            or buf.dtype != x.dtype
            or buf.shape[2:] != x.shape[2:]
            or buf.shape[0] < k
            or buf.shape[1] < width
        ):
            grow = (max(k, buf.shape[0] if buf is not None else 0),
                    max(width, buf.shape[1] if buf is not None else 0))
            buf = self._mult_buf = np.empty(grow + x.shape[2:], dtype=x.dtype)
        mult = buf[:k, :width]
        for pos in range(k):
            m = self._masks[pos][t]
            mult[pos, : m.shape[0]] = m
            if m.shape[0] < width:
                mult[pos, m.shape[0] :] = 1.0
        self._mult = mult
        return x * mult

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._mult is None:
            return dy
        return dy * self._mult

    def eval_forward(self, x: np.ndarray, k: int, shared: bool) -> Tuple[np.ndarray, bool]:
        # Inference dropout is the identity (as in the serial layer's eval
        # mode); no mask plan or generator state is touched, so evaluating
        # from a training slab never perturbs its pre-drawn streams.
        return x, shared


class StackedEmbedding(Module):
    """C independent token tables: ``(k, B, ...)`` int ids -> ``(..., D)``.

    ``weight`` is ``(C, V, D)``. The backward scatter-add runs per copy in
    the same row-major id order as the serial
    :class:`~repro.nn.layers.Embedding`, so duplicate-id accumulation is
    bit-identical per copy.
    """

    def __init__(self, weight: np.ndarray):
        super().__init__()
        if weight.ndim != 3:
            raise ValueError(f"stacked embedding weight must be (C, V, D), got {weight.shape}")
        self.n_copies, self.vocab_size, self.dim = weight.shape
        self.weight = Parameter(weight, "stacked_embedding.weight")
        self._ids: Optional[np.ndarray] = None
        self._copy_idx: Optional[np.ndarray] = None
        self._dx_zero: Optional[np.ndarray] = None

    def forward(self, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids)
        if not np.issubdtype(ids.dtype, np.integer):
            raise TypeError(f"StackedEmbedding expects integer ids, got dtype {ids.dtype}")
        if ids.ndim < 2 or ids.shape[0] > self.n_copies:
            raise ValueError(
                f"StackedEmbedding expected (k<={self.n_copies}, B, ...), got {ids.shape}"
            )
        if ids.size and (ids.min() < 0 or ids.max() >= self.vocab_size):
            raise ValueError(f"token id out of range [0, {self.vocab_size})")
        self._ids = ids
        k = ids.shape[0]
        self._copy_idx = np.arange(k).reshape((k,) + (1,) * (ids.ndim - 1))
        return self.weight.data[self._copy_idx, ids]

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._ids is None:
            raise RuntimeError("backward called before forward")
        np.add.at(self.weight.grad, (self._copy_idx, self._ids), dy)
        # Ids are not differentiable; shape-cached zero placeholder, as in
        # the serial layer.
        if (
            self._dx_zero is None
            or self._dx_zero.shape != self._ids.shape
            or self._dx_zero.dtype != dy.dtype
        ):
            self._dx_zero = np.zeros(self._ids.shape, dtype=dy.dtype)
        else:
            self._dx_zero.fill(0.0)
        return self._dx_zero

    def eval_forward(self, ids: np.ndarray, k: int, shared: bool) -> Tuple[np.ndarray, bool]:
        w = self.weight.data[:k]
        if shared:
            # Shared integer ids gather each copy's table: (k, B, ..., D).
            # Ids come from evaluation data already validated during
            # training, so the serial layer's range check is skipped.
            return w[:, ids], False
        copy_idx = np.arange(k).reshape((k,) + (1,) * (ids.ndim - 1))
        return w[copy_idx, ids], False


class StackedLSTMCell(Module):
    """C independent LSTM cells; gate layout [i, f, g, o] as in the serial
    :class:`~repro.nn.recurrent.LSTMCell`, with a leading copy axis on
    every matrix (``w_x: (C, in, 4h)``, ``w_h: (C, h, 4h)``, ``bias:
    (C, 4h)``) and one batched matmul per gate projection."""

    def __init__(self, w_x: np.ndarray, w_h: np.ndarray, bias: np.ndarray):
        super().__init__()
        if w_x.ndim != 3 or w_h.ndim != 3 or bias.ndim != 2:
            raise ValueError("stacked LSTM cell weights must carry a leading copy axis")
        self.n_copies, self.input_size, four_h = w_x.shape
        self.hidden_size = four_h // 4
        self.w_x = Parameter(w_x, "stacked_lstm.w_x")
        self.w_h = Parameter(w_h, "stacked_lstm.w_h")
        self.bias = Parameter(bias, "stacked_lstm.bias")

    def step(
        self, x_t: np.ndarray, h_prev: np.ndarray, c_prev: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, tuple]:
        """One time step over ``(k, B, ·)`` stacks; mirrors the serial
        cell's arithmetic kernel for kernel."""
        k = x_t.shape[0]
        h_sz = self.hidden_size
        gates = (
            np.matmul(x_t, self.w_x.data[:k])
            + np.matmul(h_prev, self.w_h.data[:k])
            + self.bias.data[:k, None, :]
        )
        i = _sigmoid(gates[:, :, 0 * h_sz : 1 * h_sz])
        f = _sigmoid(gates[:, :, 1 * h_sz : 2 * h_sz])
        g = np.tanh(gates[:, :, 2 * h_sz : 3 * h_sz])
        o = _sigmoid(gates[:, :, 3 * h_sz : 4 * h_sz])
        c = f * c_prev + i * g
        tanh_c = np.tanh(c)
        h = o * tanh_c
        cache = (x_t, h_prev, c_prev, i, f, g, o, tanh_c)
        return h, c, cache

    def step_backward(
        self, dh: np.ndarray, dc: np.ndarray, cache: tuple
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        x_t, h_prev, c_prev, i, f, g, o, tanh_c = cache
        k = x_t.shape[0]
        do = dh * tanh_c
        dc_total = dc + dh * o * (1.0 - tanh_c**2)
        di = dc_total * g
        df = dc_total * c_prev
        dg = dc_total * i
        dc_prev = dc_total * f
        dgates = np.concatenate(
            [
                di * i * (1.0 - i),
                df * f * (1.0 - f),
                dg * (1.0 - g**2),
                do * o * (1.0 - o),
            ],
            axis=2,
        )
        self.w_x.grad[:k] += np.matmul(x_t.transpose(0, 2, 1), dgates)
        self.w_h.grad[:k] += np.matmul(h_prev.transpose(0, 2, 1), dgates)
        self.bias.grad[:k] += dgates.sum(axis=1)
        dx_t = np.matmul(dgates, self.w_x.data[:k].transpose(0, 2, 1))
        dh_prev = np.matmul(dgates, self.w_h.data[:k].transpose(0, 2, 1))
        return dx_t, dh_prev, dc_prev

    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - guard
        raise RuntimeError("StackedLSTMCell must be driven by StackedLSTM")

    def backward(self, dy: np.ndarray) -> np.ndarray:  # pragma: no cover - guard
        raise RuntimeError("StackedLSTMCell must be driven by StackedLSTM")


class StackedLSTM(Module):
    """C lockstep LSTMs over ``(k, B, T, D)`` inputs, zero initial state
    per sequence (stateless), returning all hidden states."""

    def __init__(self, cells: List[StackedLSTMCell]):
        super().__init__()
        if not cells:
            raise ValueError("StackedLSTM needs at least one cell")
        self.n_copies = cells[0].n_copies
        self.input_size = cells[0].input_size
        self.hidden_size = cells[0].hidden_size
        self.num_layers = len(cells)
        self.cells = cells
        self._caches: Optional[List[List[tuple]]] = None
        self._t_steps = 0
        self._k = 0
        self._batch = 0

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[3] != self.input_size or x.shape[0] > self.n_copies:
            raise ValueError(
                f"StackedLSTM expected (k<={self.n_copies}, B, T, {self.input_size}), "
                f"got {x.shape}"
            )
        k, n, t_steps, _ = x.shape
        self._k, self._batch, self._t_steps = k, n, t_steps
        self._caches = [[] for _ in self.cells]
        h_sz = self.hidden_size
        inputs = x
        for layer, cell in enumerate(self.cells):
            h = np.zeros((k, n, h_sz), dtype=x.dtype)
            c = np.zeros((k, n, h_sz), dtype=x.dtype)
            outputs = np.empty((k, n, t_steps, h_sz), dtype=x.dtype)
            for t in range(t_steps):
                h, c, cache = cell.step(inputs[:, :, t, :], h, c)
                self._caches[layer].append(cache)
                outputs[:, :, t, :] = h
            inputs = outputs
        return inputs

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._caches is None:
            raise RuntimeError("backward called before forward")
        k, n, t_steps, h_sz = self._k, self._batch, self._t_steps, self.hidden_size
        if dy.shape != (k, n, t_steps, h_sz):
            raise ValueError(f"StackedLSTM backward expected {(k, n, t_steps, h_sz)}, got {dy.shape}")
        dinputs = dy
        for layer in range(self.num_layers - 1, -1, -1):
            cell = self.cells[layer]
            dx = np.zeros((k, n, t_steps, cell.input_size), dtype=dy.dtype)
            dh = np.zeros((k, n, h_sz), dtype=dy.dtype)
            dc = np.zeros((k, n, h_sz), dtype=dy.dtype)
            for t in range(t_steps - 1, -1, -1):
                dh_total = dh + dinputs[:, :, t, :]
                dx_t, dh, dc = cell.step_backward(dh_total, dc, self._caches[layer][t])
                dx[:, :, t, :] = dx_t
            dinputs = dx
        return dinputs

    def eval_forward(self, x: np.ndarray, k: int, shared: bool) -> Tuple[np.ndarray, bool]:
        # Cache-free inference mirroring the serial cell's arithmetic
        # kernel for kernel. A still-shared input only stays shared for the
        # very first gate projection (matmul broadcasts it against the
        # stacked w_x); the recurrent state is per-copy from step one.
        h_sz = self.hidden_size
        inputs = x
        for cell in self.cells:
            if shared:
                n, t_steps = inputs.shape[0], inputs.shape[1]
            else:
                n, t_steps = inputs.shape[1], inputs.shape[2]
            h = np.zeros((k, n, h_sz), dtype=inputs.dtype)
            c = np.zeros((k, n, h_sz), dtype=inputs.dtype)
            outputs = np.empty((k, n, t_steps, h_sz), dtype=inputs.dtype)
            for t in range(t_steps):
                x_t = inputs[:, t, :] if shared else inputs[:, :, t, :]
                gates = (
                    np.matmul(x_t, cell.w_x.data[:k])
                    + np.matmul(h, cell.w_h.data[:k])
                    + cell.bias.data[:k, None, :]
                )
                i = _sigmoid(gates[:, :, 0 * h_sz : 1 * h_sz])
                f = _sigmoid(gates[:, :, 1 * h_sz : 2 * h_sz])
                g = np.tanh(gates[:, :, 2 * h_sz : 3 * h_sz])
                o = _sigmoid(gates[:, :, 3 * h_sz : 4 * h_sz])
                c = f * c + i * g
                h = o * np.tanh(c)
                outputs[:, :, t, :] = h
            inputs = outputs
            shared = False
        return inputs, False


# -- stacked losses -----------------------------------------------------------


def _check_mask(
    mask: Optional[np.ndarray], shape: tuple, dtype=None
) -> Optional[np.ndarray]:
    if mask is None:
        return None
    mask = np.asarray(mask, dtype=np.float64 if dtype is None else dtype)
    if mask.shape != shape:
        raise ValueError(f"mask must be {shape}, got {mask.shape}")
    counts = mask.sum(axis=1)
    if np.any(counts <= 0):
        raise ValueError("mask excludes every row of at least one copy")
    return mask


def stacked_softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray, mask: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-copy mean cross-entropy over a ``(C, B, K)`` stacked batch.

    Row-wise the math is identical to :func:`repro.nn.losses.softmax_cross_entropy`;
    the mean is taken per copy. ``mask`` (``(C, B)`` in {0, 1}) excludes
    padded rows: masked rows contribute neither loss nor gradient, and each
    copy's loss averages over its *unmasked* rows — so gradient sums match
    a serial pass over just the real rows. Returns ``(losses, dlogits)``
    with ``losses`` of shape ``(C,)`` and ``dlogits`` pre-scaled for
    ``model.backward``.
    """
    if logits.ndim != 3:
        raise ValueError(f"logits must be (C, B, K), got {logits.shape}")
    c, b, k = logits.shape
    labels = np.asarray(labels)
    if labels.shape != (c, b):
        raise ValueError(f"labels must be ({c},{b}), got {labels.shape}")
    if b == 0:
        raise ValueError("empty batch")
    mask = _check_mask(mask, (c, b), dtype=logits.dtype)
    logp = log_softmax(logits, axis=2)
    rows = np.arange(c)[:, None], np.arange(b)[None, :], labels
    nll = -logp[rows]  # (C, B)
    dlogits = softmax(logits, axis=2)
    dlogits[rows] -= 1.0
    if mask is None:
        losses = nll.mean(axis=1)
        dlogits /= b
    else:
        counts = mask.sum(axis=1)
        losses = (nll * mask).sum(axis=1) / counts
        dlogits *= (mask / counts[:, None])[:, :, None]
    return losses, dlogits


def stacked_mse(
    preds: np.ndarray, targets: np.ndarray, mask: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-copy mean squared error over a ``(C, B, ...)`` stacked batch.

    Mirrors :func:`repro.nn.losses.mse_loss` per copy: the loss averages
    over every element of the copy's (unmasked) rows. ``mask`` is ``(C, B)``
    in {0, 1}; masked rows contribute neither loss nor gradient.
    """
    target_dtype = (
        preds.dtype if np.issubdtype(preds.dtype, np.floating) else np.float64
    )
    targets = np.asarray(targets, dtype=target_dtype)
    if preds.ndim < 2:
        raise ValueError(f"preds must be (C, B, ...), got {preds.shape}")
    if preds.shape != targets.shape:
        raise ValueError(f"shape mismatch: preds {preds.shape} vs targets {targets.shape}")
    c, b = preds.shape[:2]
    if b == 0:
        raise ValueError("empty batch")
    mask = _check_mask(mask, (c, b), dtype=target_dtype)
    per_row = int(np.prod(preds.shape[2:], dtype=np.int64)) if preds.ndim > 2 else 1
    diff = preds - targets
    sq = diff**2
    if mask is None:
        losses = sq.reshape(c, -1).mean(axis=1)
        dpreds = (2.0 / (b * per_row)) * diff
    else:
        counts = mask.sum(axis=1) * per_row
        mask_b = mask.reshape((c, b) + (1,) * (preds.ndim - 2))
        losses = (sq * mask_b).reshape(c, -1).sum(axis=1) / counts
        dpreds = diff * (2.0 * mask_b / counts.reshape((c,) + (1,) * (preds.ndim - 1)))
    return losses, dpreds


def stacked_sequence_cross_entropy(
    logits: np.ndarray, labels: np.ndarray, mask: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-copy token-averaged cross-entropy over ``(C, B, T, V)`` logits.

    Mirrors :func:`repro.nn.losses.sequence_cross_entropy` per copy (the
    serial client loss is called without a token mask, so each copy's loss
    averages over all ``B*T`` tokens of its unmasked rows). ``mask`` is the
    cohort trainer's ``(C, B)`` *row* mask in {0, 1}: a masked (padded)
    sequence contributes neither loss nor gradient, and the copy's average
    runs over the tokens of its real rows only.
    """
    if logits.ndim != 4:
        raise ValueError(f"logits must be (C, B, T, V), got {logits.shape}")
    c, b, t, v = logits.shape
    labels = np.asarray(labels)
    if labels.shape != (c, b, t):
        raise ValueError(f"labels must be ({c},{b},{t}), got {labels.shape}")
    if b == 0 or t == 0:
        raise ValueError("empty batch")
    mask = _check_mask(mask, (c, b), dtype=logits.dtype)
    flat = logits.reshape(c, b * t, v)
    flat_labels = labels.reshape(c, b * t)
    logp = log_softmax(flat, axis=2)
    rows = np.arange(c)[:, None], np.arange(b * t)[None, :], flat_labels
    nll = -logp[rows]  # (C, B*T)
    dflat = softmax(flat, axis=2)
    dflat[rows] -= 1.0
    if mask is None:
        # Multiply by the reciprocal, exactly as the serial loss's
        # (mask / denom) elementwise scale does for an all-ones mask.
        denom = float(b * t)
        losses = nll.sum(axis=1) / denom
        dflat *= 1.0 / denom
    else:
        token_mask = np.repeat(mask, t, axis=1)  # (C, B*T), row-major token order
        denoms = mask.sum(axis=1) * t
        losses = (nll * token_mask).sum(axis=1) / denoms
        dflat *= (token_mask / denoms[:, None])[:, :, None]
    return losses, dflat.reshape(c, b, t, v)


#: Serial loss function -> its stacked counterpart. The cohort trainer uses
#: this to translate a TaskSpec's ``loss_fn``; tasks whose loss is not here
#: fall back to serial training.
STACKED_LOSSES: Dict[Callable, Callable] = {
    softmax_cross_entropy: stacked_softmax_cross_entropy,
    mse_loss: stacked_mse,
    sequence_cross_entropy: stacked_sequence_cross_entropy,
}


# -- stacking a template model ------------------------------------------------


def _stack_linear(layer: Linear, n_copies: int) -> StackedLinear:
    weight = np.repeat(layer.weight.data[None], n_copies, axis=0)
    bias = np.repeat(layer.bias.data[None], n_copies, axis=0) if layer.bias is not None else None
    return StackedLinear(weight, bias)


def _stack_conv(layer: Conv2D, n_copies: int) -> StackedConv2D:
    return StackedConv2D(
        np.repeat(layer.weight.data[None], n_copies, axis=0),
        np.repeat(layer.bias.data[None], n_copies, axis=0),
        stride=layer.stride,
        pad=layer.pad,
    )


def _stack_embedding(layer: Embedding, n_copies: int) -> StackedEmbedding:
    return StackedEmbedding(np.repeat(layer.weight.data[None], n_copies, axis=0))


def _stack_lstm(layer: LSTM, n_copies: int) -> StackedLSTM:
    cells = [
        StackedLSTMCell(
            np.repeat(cell.w_x.data[None], n_copies, axis=0),
            np.repeat(cell.w_h.data[None], n_copies, axis=0),
            np.repeat(cell.bias.data[None], n_copies, axis=0),
        )
        for cell in layer.cells
    ]
    return StackedLSTM(cells)


#: Leaf layer type -> factory building its stacked counterpart. Exact-type
#: match: a subclass with different semantics must register itself.
STACK_FACTORIES: Dict[Type[Module], Callable[[Module, int], Module]] = {
    Linear: _stack_linear,
    Conv2D: _stack_conv,
    MaxPool2D: lambda layer, n: StackedMaxPool2D(layer.pool_size),
    Flatten: lambda layer, n: StackedFlatten(),
    ReLU: lambda layer, n: StackedReLU(),
    Tanh: lambda layer, n: StackedTanh(),
    Sigmoid: lambda layer, n: StackedSigmoid(),
    Dropout: lambda layer, n: StackedDropout(layer.rate),
    Embedding: _stack_embedding,
    LSTM: _stack_lstm,
}

#: Structural attributes (beyond parameter shapes) that distinguish two
#: same-type leaves with different compute graphs, for :func:`stack_signature`.
_SIGNATURE_EXTRAS: Dict[Type[Module], Callable[[Module], tuple]] = {
    Conv2D: lambda l: (l.stride, l.pad),
    MaxPool2D: lambda l: (l.pool_size,),
    Dropout: lambda l: (l.rate,),
    LSTM: lambda l: (l.input_size, l.hidden_size, l.num_layers),
    Linear: lambda l: (l.bias is not None,),
}


def _iter_leaves(module: Module):
    """Depth-first leaf layers of (possibly nested) Sequential containers."""
    if isinstance(module, Sequential):
        for child in module:
            yield from _iter_leaves(child)
    else:
        yield module


def _stackable_leaves(module: Module) -> Optional[List[Module]]:
    """Leaf layers of ``module`` when every one has a stacked counterpart,
    else ``None`` (the structural half of :func:`supports_stacking`)."""
    if not isinstance(module, Sequential):
        return None
    leaves = list(_iter_leaves(module))
    if not all(type(leaf) in STACK_FACTORIES for leaf in leaves):
        return None
    return leaves


def supports_stacking(module: Module) -> bool:
    """True iff every leaf layer of ``module`` has a stacked counterpart.

    A purely structural check. Models whose active Dropout layers share
    one generator object stack too: the cohort trainer detects the
    sharing and switches to the eager interleaved mask pre-draw
    (:meth:`StackedDropout.install_masks`), which reproduces the serial
    loop's cross-layer draw order from the single stream exactly.
    """
    return _stackable_leaves(module) is not None


def collect_dropout_rngs(module: Module) -> List[np.random.Generator]:
    """Generators of the module's *active* Dropout leaves, in leaf order.

    The cohort trainer snapshots these around a lockstep attempt (mask
    pre-draw consumes them) and hands them to the stacked model's
    :class:`StackedDropout` layers — index-aligned with the stacked
    counterpart's active (rate > 0) Dropout layers in leaf order, the
    same filter applied here.
    """
    return [
        leaf.rng for leaf in _iter_leaves(module) if isinstance(leaf, Dropout) and leaf.rate > 0
    ]


def _signature_parts(leaves: Sequence[Module]) -> tuple:
    parts = []
    for leaf in leaves:
        extra = _SIGNATURE_EXTRAS.get(type(leaf))
        parts.append(
            (
                type(leaf).__name__,
                tuple(tuple(p.shape) for p in leaf.parameters()),
                extra(leaf) if extra is not None else (),
            )
        )
    return tuple(parts)


def stack_signature(module: Module) -> Optional[tuple]:
    """Hashable architecture key, or ``None`` when stacking is unsupported.

    Two models with equal signatures run the identical stacked compute
    graph, so their trials can share one cross-trial parameter slab (the
    fused runner groups ``advance_many`` batches by this key). The key
    captures leaf types, parameter shapes, and the structural attributes
    in ``_SIGNATURE_EXTRAS`` — everything that shapes the forward/backward
    kernels — but not parameter *values*, which live in the slab rows.
    """
    if not supports_stacking(module):
        return None
    return _signature_parts(list(_iter_leaves(module)))


def eval_stack_signature(module: Module) -> Optional[tuple]:
    """Architecture key for *inference* stacking, or ``None``.

    Equal to :func:`stack_signature` for every stackable model (the two
    checks are both structural now that shared-generator Dropout trains
    on the slab); kept as a separate seam because inference stacking has
    strictly weaker requirements — a future training-side refusal must
    not cost models their fused evaluation. The fused evaluation engine
    groups same-signature models onto one
    :meth:`StackedModel.forward_eval` inference slab.
    """
    leaves = _stackable_leaves(module)
    if leaves is None:
        return None
    return _signature_parts(leaves)


class StackedModel(Module):
    """C lockstep copies of a template model over one ``(C, P)`` parameter slab.

    Parameters of the stacked layers are compute-dtype *views* into
    ``slab`` (and gradients into ``grad_slab``), laid out so that
    ``slab[c]`` is exactly ``get_flat_params(template)`` of copy ``c``.
    Setting the slab therefore sets every layer, and a fused optimizer
    step on the slab updates every layer — no per-parameter
    gather/scatter. ``dtype`` is the slab compute dtype
    (:func:`repro.nn.backend.resolve_dtype`: float64 default — the
    bit-exact serial reference — or opt-in float32, which halves slab
    memory); since layer parameters alias the slab, it governs every
    kernel's compute precision.
    """

    def __init__(self, template: Module, n_copies: int, dtype=None):
        super().__init__()
        if n_copies < 1:
            raise ValueError(f"n_copies must be >= 1, got {n_copies}")
        # Structural coverage only: generators are supplied per round via
        # begin_round/install_masks, so Dropout stream handling is the
        # trainers' job, not the model's.
        if _stackable_leaves(template) is None:
            raise ValueError(
                f"model {type(template).__name__} contains layers without stacked kernels"
            )
        self.n_copies = n_copies
        self.dtype = resolve_dtype(dtype)
        self.layers: List[Module] = [
            STACK_FACTORIES[type(leaf)](leaf, n_copies) for leaf in _iter_leaves(template)
        ]
        template_params = [p for leaf in _iter_leaves(template) for p in leaf.parameters()]
        self.n_params = sum(p.size for p in template_params)
        self._slab = np.empty((n_copies, self.n_params), dtype=self.dtype)
        self._gslab = np.zeros((n_copies, self.n_params), dtype=self.dtype)
        # Rebind every stacked parameter's data/grad to slab views. Stacked
        # layers create parameters in the same order as their template
        # layer, so offsets line up with get_flat_params column order.
        stacked_params = self.parameters()
        if len(stacked_params) != len(template_params):
            raise RuntimeError("stacked/template parameter count mismatch")
        offset = 0
        for sp, tp in zip(stacked_params, template_params):
            if sp.shape != (n_copies,) + tp.shape:
                raise RuntimeError(
                    f"stacked param {sp.name} shape {sp.shape} does not stack {tp.shape}"
                )
            view = self._slab[:, offset : offset + tp.size].reshape((n_copies,) + tp.shape)
            view[...] = sp.data
            sp.data = view
            sp.grad = self._gslab[:, offset : offset + tp.size].reshape((n_copies,) + tp.shape)
            offset += tp.size

    # -- slab access ---------------------------------------------------------
    @property
    def slab(self) -> np.ndarray:
        """The ``(C, P)`` parameter slab (mutating it mutates the layers)."""
        return self._slab

    @property
    def grad_slab(self) -> np.ndarray:
        """The ``(C, P)`` gradient slab (aliased by every ``p.grad``)."""
        return self._gslab

    def set_flat(self, flat: np.ndarray) -> None:
        """Load one flat ``(P,)`` vector into every copy (broadcast, cast
        to the slab's compute dtype)."""
        flat = np.asarray(flat, dtype=self._slab.dtype)
        if flat.shape != (self.n_params,):
            raise ValueError(f"expected flat vector of size {self.n_params}, got {flat.shape}")
        self._slab[...] = flat

    def set_slab(self, slab: np.ndarray) -> None:
        """Load per-copy flat parameters from a ``(C, P)`` array."""
        if slab.shape != self._slab.shape:
            raise ValueError(f"expected slab of shape {self._slab.shape}, got {slab.shape}")
        self._slab[...] = slab

    def get_slab(self, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Copy of the slab (into ``out`` when given)."""
        if out is None:
            return self._slab.copy()
        out[...] = self._slab
        return out

    def zero_grad(self) -> None:
        self._gslab.fill(0.0)

    # -- compute -------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, dy: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            dy = layer.backward(dy)
        return dy

    def forward_eval(self, x: np.ndarray, k: Optional[int] = None) -> np.ndarray:
        """Inference of the leading ``k`` copies over ONE shared input batch.

        ``x`` carries *no* copy axis — it is the batch every copy
        evaluates, as in cross-trial validation sweeps where T models see
        the same pool. Parameter-free prefix layers run the serial kernel
        once; the first parameterised layer fans out to ``(k, B, ...)``
        via a broadcast matmul/gather, after which stacked per-copy
        kernels take over. Nothing is cached (no backward, no memory
        bloat) and training state (Dropout plans/streams) is untouched,
        so a *training* slab can be borrowed for evaluation between
        rounds. Per copy the result is the serial model's forward on
        ``x`` — same dgemm shapes, same elementwise ops — which is what
        makes fused evaluation bit-identical to ``client_error_rates``
        on the unstacked models.
        """
        k = self.n_copies if k is None else k
        if not 1 <= k <= self.n_copies:
            raise ValueError(f"k must be in [1, {self.n_copies}], got {k}")
        h, shared = x, True
        for layer in self.layers:
            h, shared = layer.eval_forward(h, k, shared)
        if shared:  # parameter-free model: every copy sees the same output
            h = np.broadcast_to(h, (k,) + h.shape)
        return h
