"""Stacked (multi-copy) layers: lockstep compute over a leading client axis.

The vectorized cohort trainer (:mod:`repro.fl.cohort`) trains every client
of a federated round simultaneously. Each client holds its own copy of the
model parameters, so the compute primitive is a *stacked* layer: inputs
carry a leading copy axis ``C`` (``(C, B, ...)``) and parameters carry the
same axis (``(C, ...)``), with all C copies advanced by one batched kernel
call — e.g. ``StackedLinear`` is a single ``(C,B,d) @ (C,d,out)`` batched
matmul instead of C Python-level layer calls.

:class:`StackedModel` materializes C copies of a template
:class:`~repro.nn.module.Sequential`'s parameters as one contiguous
``(C, P)`` slab (P = flat parameter count, column order matching
:func:`~repro.nn.module.get_flat_params`). Layer parameters and gradients
are *views* into the slab and its gradient twin, so a fused optimizer step
on the slab (:func:`repro.nn.optim.fused_sgd_step`) updates every layer
in place with no gather/scatter.

Numerical contract: with no padding in play, every stacked kernel is
elementwise- or GEMM-per-slice-identical to its serial counterpart, so
copy ``c`` of a stacked forward/backward reproduces the serial model
bit-for-bit on the reference BLAS paths; the cohort trainer's equivalence
tests assert this directly. Padded rows (ragged batches) are excluded via
loss masks, which changes only summation *order* in per-client reductions
(documented tolerance in :mod:`tests.fl.test_cohort`).

Prefix activation: when the first input axis ``k`` is smaller than the
number of copies C, parameterised layers compute with the leading ``k``
parameter copies only (views, no copy). The cohort trainer uses this to
retire clients that have exhausted their local steps without re-building
the stack.

Layers with data-dependent control flow per copy (LSTM), RNG consumption
(Dropout), or integer inputs (Embedding) have no stacked counterpart;
:func:`supports_stacking` reports this and the cohort trainer falls back
to the serial per-client path for such models.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, Type

import numpy as np

from repro.nn.functional import col2im, im2col, log_softmax, softmax
from repro.nn.layers import Conv2D, Flatten, Linear, MaxPool2D, ReLU, Sigmoid, Tanh
from repro.nn.losses import mse_loss, softmax_cross_entropy
from repro.nn.module import Module, Parameter, Sequential


class StackedLinear(Module):
    """C independent affine layers: ``y[c] = x[c] @ W[c] + b[c]``.

    ``weight`` is ``(C, in, out)``, ``bias`` ``(C, out)``; inputs are
    ``(k, B, in)`` with ``k <= C`` (prefix activation).
    """

    def __init__(self, weight: np.ndarray, bias: Optional[np.ndarray]):
        super().__init__()
        if weight.ndim != 3:
            raise ValueError(f"stacked weight must be (C, in, out), got {weight.shape}")
        self.n_copies, self.in_features, self.out_features = weight.shape
        self.weight = Parameter(weight, "stacked_linear.weight")
        self.bias = Parameter(bias, "stacked_linear.bias") if bias is not None else None
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 3 or x.shape[-1] != self.in_features or x.shape[0] > self.n_copies:
            raise ValueError(
                f"StackedLinear expected (k<={self.n_copies}, B, {self.in_features}), got {x.shape}"
            )
        self._x = x
        k = x.shape[0]
        y = np.matmul(x, self.weight.data[:k])
        if self.bias is not None:
            y += self.bias.data[:k, None, :]
        return y

    def backward(self, dy: np.ndarray) -> np.ndarray:
        x = self._x
        if x is None:
            raise RuntimeError("backward called before forward")
        k = x.shape[0]
        self.weight.grad[:k] += np.matmul(x.transpose(0, 2, 1), dy)
        if self.bias is not None:
            self.bias.grad[:k] += dy.sum(axis=1)
        return np.matmul(dy, self.weight.data[:k].transpose(0, 2, 1))


class StackedConv2D(Module):
    """C independent 2-D convolutions over ``(k, B, C_in, H, W)`` inputs.

    im2col runs once over the collapsed ``(k*B, ...)`` image stack (the
    unfold is per-image, so collapsing is exact); the per-copy weights then
    apply as one batched ``(k, B*oh*ow, ckk) @ (k, ckk, out_c)`` matmul.
    """

    def __init__(
        self,
        weight: np.ndarray,
        bias: np.ndarray,
        stride: int = 1,
        pad: int = 0,
    ):
        super().__init__()
        if weight.ndim != 5 or weight.shape[3] != weight.shape[4]:
            raise ValueError(
                f"stacked conv weight must be (C, out_c, in_c, k, k), got {weight.shape}"
            )
        self.n_copies, self.out_channels, self.in_channels, self.kernel_size, _ = weight.shape
        self.stride = stride
        self.pad = pad
        self.weight = Parameter(weight, "stacked_conv.weight")
        self.bias = Parameter(bias, "stacked_conv.bias")
        self._cols: Optional[np.ndarray] = None
        self._x_shape: Optional[tuple] = None
        self._out_hw: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 5 or x.shape[2] != self.in_channels or x.shape[0] > self.n_copies:
            raise ValueError(
                f"StackedConv2D expected (k<={self.n_copies}, B, {self.in_channels}, H, W), "
                f"got {x.shape}"
            )
        k, b = x.shape[:2]
        ksz = self.kernel_size
        cols, out_h, out_w = im2col(
            x.reshape((k * b,) + x.shape[2:]), ksz, ksz, self.stride, self.pad
        )
        cols = cols.reshape(k, b * out_h * out_w, -1)
        self._cols, self._x_shape, self._out_hw = cols, x.shape, (out_h, out_w)
        w2 = self.weight.data[:k].reshape(k, self.out_channels, -1)  # (k, out_c, ckk)
        y = np.matmul(cols, w2.transpose(0, 2, 1))  # (k, B*oh*ow, out_c)
        y += self.bias.data[:k, None, :]
        return y.reshape(k, b, out_h, out_w, self.out_channels).transpose(0, 1, 4, 2, 3)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._cols is None:
            raise RuntimeError("backward called before forward")
        k, b = self._x_shape[:2]
        out_h, out_w = self._out_hw
        dy2 = dy.transpose(0, 1, 3, 4, 2).reshape(k, b * out_h * out_w, self.out_channels)
        self.weight.grad[:k] += np.matmul(dy2.transpose(0, 2, 1), self._cols).reshape(
            (k,) + self.weight.shape[1:]
        )
        self.bias.grad[:k] += dy2.sum(axis=1)
        w2 = self.weight.data[:k].reshape(k, self.out_channels, -1)
        dcols = np.matmul(dy2, w2).reshape(k * b * out_h * out_w, -1)
        ksz = self.kernel_size
        dx = col2im(dcols, (k * b,) + self._x_shape[2:], ksz, ksz, self.stride, self.pad)
        return dx.reshape(self._x_shape)


class StackedMaxPool2D(MaxPool2D):
    """Max pooling over ``(k, B, C_in, H, W)``: pooling is per-window, so
    the serial kernel applies verbatim on the collapsed ``(k*B, ...)``
    image stack — one kernel to maintain, identical tie handling."""

    def __init__(self, pool_size: int = 2):
        super().__init__(pool_size)
        self._stack_shape: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        k, b = x.shape[:2]
        self._stack_shape = x.shape
        y = MaxPool2D.forward(self, x.reshape((k * b,) + x.shape[2:]))
        return y.reshape((k, b) + y.shape[1:])

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._stack_shape is None:
            raise RuntimeError("backward called before forward")
        k, b = self._stack_shape[:2]
        dx = MaxPool2D.backward(self, dy.reshape((k * b,) + dy.shape[2:]))
        return dx.reshape(self._stack_shape)


class StackedFlatten(Module):
    """Collapse all but the copy and batch axes: ``(k, B, ...) -> (k, B, F)``."""

    def __init__(self) -> None:
        super().__init__()
        self._x_shape: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        return x.reshape(x.shape[0], x.shape[1], -1)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        return dy.reshape(self._x_shape)


class StackedReLU(ReLU):
    """ReLU over ``(k, B, ...)`` — elementwise, so the serial kernel is
    already stacked; the subclass only documents the shape contract."""


class StackedTanh(Tanh):
    """Tanh over ``(k, B, ...)`` (elementwise; serial kernel reused)."""


class StackedSigmoid(Sigmoid):
    """Sigmoid over ``(k, B, ...)`` (elementwise; serial kernel reused)."""


# -- stacked losses -----------------------------------------------------------


def _check_mask(mask: Optional[np.ndarray], shape: tuple) -> Optional[np.ndarray]:
    if mask is None:
        return None
    mask = np.asarray(mask, dtype=np.float64)
    if mask.shape != shape:
        raise ValueError(f"mask must be {shape}, got {mask.shape}")
    counts = mask.sum(axis=1)
    if np.any(counts <= 0):
        raise ValueError("mask excludes every row of at least one copy")
    return mask


def stacked_softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray, mask: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-copy mean cross-entropy over a ``(C, B, K)`` stacked batch.

    Row-wise the math is identical to :func:`repro.nn.losses.softmax_cross_entropy`;
    the mean is taken per copy. ``mask`` (``(C, B)`` in {0, 1}) excludes
    padded rows: masked rows contribute neither loss nor gradient, and each
    copy's loss averages over its *unmasked* rows — so gradient sums match
    a serial pass over just the real rows. Returns ``(losses, dlogits)``
    with ``losses`` of shape ``(C,)`` and ``dlogits`` pre-scaled for
    ``model.backward``.
    """
    if logits.ndim != 3:
        raise ValueError(f"logits must be (C, B, K), got {logits.shape}")
    c, b, k = logits.shape
    labels = np.asarray(labels)
    if labels.shape != (c, b):
        raise ValueError(f"labels must be ({c},{b}), got {labels.shape}")
    if b == 0:
        raise ValueError("empty batch")
    mask = _check_mask(mask, (c, b))
    logp = log_softmax(logits, axis=2)
    rows = np.arange(c)[:, None], np.arange(b)[None, :], labels
    nll = -logp[rows]  # (C, B)
    dlogits = softmax(logits, axis=2)
    dlogits[rows] -= 1.0
    if mask is None:
        losses = nll.mean(axis=1)
        dlogits /= b
    else:
        counts = mask.sum(axis=1)
        losses = (nll * mask).sum(axis=1) / counts
        dlogits *= (mask / counts[:, None])[:, :, None]
    return losses, dlogits


def stacked_mse(
    preds: np.ndarray, targets: np.ndarray, mask: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-copy mean squared error over a ``(C, B, ...)`` stacked batch.

    Mirrors :func:`repro.nn.losses.mse_loss` per copy: the loss averages
    over every element of the copy's (unmasked) rows. ``mask`` is ``(C, B)``
    in {0, 1}; masked rows contribute neither loss nor gradient.
    """
    targets = np.asarray(targets, dtype=np.float64)
    if preds.ndim < 2:
        raise ValueError(f"preds must be (C, B, ...), got {preds.shape}")
    if preds.shape != targets.shape:
        raise ValueError(f"shape mismatch: preds {preds.shape} vs targets {targets.shape}")
    c, b = preds.shape[:2]
    if b == 0:
        raise ValueError("empty batch")
    mask = _check_mask(mask, (c, b))
    per_row = int(np.prod(preds.shape[2:], dtype=np.int64)) if preds.ndim > 2 else 1
    diff = preds - targets
    sq = diff**2
    if mask is None:
        losses = sq.reshape(c, -1).mean(axis=1)
        dpreds = (2.0 / (b * per_row)) * diff
    else:
        counts = mask.sum(axis=1) * per_row
        mask_b = mask.reshape((c, b) + (1,) * (preds.ndim - 2))
        losses = (sq * mask_b).reshape(c, -1).sum(axis=1) / counts
        dpreds = diff * (2.0 * mask_b / counts.reshape((c,) + (1,) * (preds.ndim - 1)))
    return losses, dpreds


#: Serial loss function -> its stacked counterpart. The cohort trainer uses
#: this to translate a TaskSpec's ``loss_fn``; tasks whose loss is not here
#: fall back to serial training.
STACKED_LOSSES: Dict[Callable, Callable] = {
    softmax_cross_entropy: stacked_softmax_cross_entropy,
    mse_loss: stacked_mse,
}


# -- stacking a template model ------------------------------------------------


def _stack_linear(layer: Linear, n_copies: int) -> StackedLinear:
    weight = np.repeat(layer.weight.data[None], n_copies, axis=0)
    bias = np.repeat(layer.bias.data[None], n_copies, axis=0) if layer.bias is not None else None
    return StackedLinear(weight, bias)


def _stack_conv(layer: Conv2D, n_copies: int) -> StackedConv2D:
    return StackedConv2D(
        np.repeat(layer.weight.data[None], n_copies, axis=0),
        np.repeat(layer.bias.data[None], n_copies, axis=0),
        stride=layer.stride,
        pad=layer.pad,
    )


#: Leaf layer type -> factory building its stacked counterpart. Exact-type
#: match: a subclass with different semantics must register itself.
STACK_FACTORIES: Dict[Type[Module], Callable[[Module, int], Module]] = {
    Linear: _stack_linear,
    Conv2D: _stack_conv,
    MaxPool2D: lambda layer, n: StackedMaxPool2D(layer.pool_size),
    Flatten: lambda layer, n: StackedFlatten(),
    ReLU: lambda layer, n: StackedReLU(),
    Tanh: lambda layer, n: StackedTanh(),
    Sigmoid: lambda layer, n: StackedSigmoid(),
}


def _iter_leaves(module: Module):
    """Depth-first leaf layers of (possibly nested) Sequential containers."""
    if isinstance(module, Sequential):
        for child in module:
            yield from _iter_leaves(child)
    else:
        yield module


def supports_stacking(module: Module) -> bool:
    """True iff every leaf layer of ``module`` has a stacked counterpart.

    Models containing LSTMs, Embeddings, or Dropout (per-copy RNG) report
    False; the cohort trainer then keeps the serial per-client path.
    """
    if not isinstance(module, Sequential):
        return False
    return all(type(leaf) in STACK_FACTORIES for leaf in _iter_leaves(module))


class StackedModel(Module):
    """C lockstep copies of a template model over one ``(C, P)`` parameter slab.

    Parameters of the stacked layers are float64 *views* into ``slab``
    (and gradients into ``grad_slab``), laid out so that ``slab[c]`` is
    exactly ``get_flat_params(template)`` of copy ``c``. Setting the slab
    therefore sets every layer, and a fused optimizer step on the slab
    updates every layer — no per-parameter gather/scatter.
    """

    def __init__(self, template: Module, n_copies: int):
        super().__init__()
        if n_copies < 1:
            raise ValueError(f"n_copies must be >= 1, got {n_copies}")
        if not supports_stacking(template):
            raise ValueError(
                f"model {type(template).__name__} contains layers without stacked kernels"
            )
        self.n_copies = n_copies
        self.layers: List[Module] = [
            STACK_FACTORIES[type(leaf)](leaf, n_copies) for leaf in _iter_leaves(template)
        ]
        template_params = [p for leaf in _iter_leaves(template) for p in leaf.parameters()]
        self.n_params = sum(p.size for p in template_params)
        self._slab = np.empty((n_copies, self.n_params), dtype=np.float64)
        self._gslab = np.zeros((n_copies, self.n_params), dtype=np.float64)
        # Rebind every stacked parameter's data/grad to slab views. Stacked
        # layers create parameters in the same order as their template
        # layer, so offsets line up with get_flat_params column order.
        stacked_params = self.parameters()
        if len(stacked_params) != len(template_params):
            raise RuntimeError("stacked/template parameter count mismatch")
        offset = 0
        for sp, tp in zip(stacked_params, template_params):
            if sp.shape != (n_copies,) + tp.shape:
                raise RuntimeError(
                    f"stacked param {sp.name} shape {sp.shape} does not stack {tp.shape}"
                )
            view = self._slab[:, offset : offset + tp.size].reshape((n_copies,) + tp.shape)
            view[...] = sp.data
            sp.data = view
            sp.grad = self._gslab[:, offset : offset + tp.size].reshape((n_copies,) + tp.shape)
            offset += tp.size

    # -- slab access ---------------------------------------------------------
    @property
    def slab(self) -> np.ndarray:
        """The ``(C, P)`` parameter slab (mutating it mutates the layers)."""
        return self._slab

    @property
    def grad_slab(self) -> np.ndarray:
        """The ``(C, P)`` gradient slab (aliased by every ``p.grad``)."""
        return self._gslab

    def set_flat(self, flat: np.ndarray) -> None:
        """Load one flat ``(P,)`` vector into every copy (broadcast)."""
        flat = np.asarray(flat, dtype=np.float64)
        if flat.shape != (self.n_params,):
            raise ValueError(f"expected flat vector of size {self.n_params}, got {flat.shape}")
        self._slab[...] = flat

    def set_slab(self, slab: np.ndarray) -> None:
        """Load per-copy flat parameters from a ``(C, P)`` array."""
        if slab.shape != self._slab.shape:
            raise ValueError(f"expected slab of shape {self._slab.shape}, got {slab.shape}")
        self._slab[...] = slab

    def get_slab(self, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Copy of the slab (into ``out`` when given)."""
        if out is None:
            return self._slab.copy()
        out[...] = self._slab
        return out

    def zero_grad(self) -> None:
        self._gslab.fill(0.0)

    # -- compute -------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, dy: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            dy = layer.backward(dy)
        return dy
