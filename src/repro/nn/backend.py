"""Array-namespace shim: the backend seam under every slab kernel.

All stacked kernels (:mod:`repro.nn.stacked`), the fused optimizer
(:mod:`repro.nn.optim`), the cohort slab trainer
(:mod:`repro.fl.cohort`), and the stacked eval engine
(:mod:`repro.fl.evaluation`) obtain their array operations through the
module-level :data:`xp` proxy exported here instead of importing NumPy
directly. ``xp`` resolves attribute access against the *active* backend's
namespace at call time, so swapping the backend redirects every kernel
without touching kernel code.

A backend is an :class:`ArrayBackend`: a namespace object (``numpy``,
``cupy``, or any module exposing the NumPy API) plus per-backend policy —
default compute dtype, an RNG adapter (how to turn a seed into a
generator whose draws land on that backend), and host transfer hooks.
Candidate namespaces are vetted by an explicit capability probe
(:func:`probe_capabilities` over :data:`REQUIRED_OPS`): a namespace
missing ops the kernels call is rejected up front by
:meth:`ArrayBackend.require`, not discovered mid-round by an
``AttributeError`` deep inside a training loop.

Precision is a separate, orthogonal axis: :func:`resolve_dtype` maps an
explicit ``dtype`` argument, the ``$REPRO_DTYPE`` environment variable,
or the backend's default (float64) to the slab compute dtype. float64 is
the bit-exact serial-equivalence reference; float32 halves slab memory
and trades bit-exactness for a documented per-round tolerance (see
README "Backends & precision").

Scratch-buffer convention for kernel authors: allocate scratch with
``xp.empty(..., dtype=<input>.dtype)`` (never a bare ``np.float64``) and
prefer ``out=`` ufunc forms — both keep float32 slabs float32 end-to-end
and keep kernels allocation-free on reuse, which is what a GPU backend
needs to avoid per-step allocator churn.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional, Tuple

import numpy

#: Environment variable selecting the active backend by registry name.
BACKEND_ENV = "REPRO_BACKEND"

#: Environment variable selecting the slab compute dtype ("float64" or
#: "float32") when no explicit ``dtype``/``cohort_dtype`` argument wins.
DTYPE_ENV = "REPRO_DTYPE"

#: Slab compute dtypes the engine supports.
SUPPORTED_DTYPES = ("float64", "float32")

#: Dotted op names the slab kernels call through ``xp``. The probe
#: resolves each by attribute traversal on the candidate namespace; a
#: backend failing any of these cannot run the kernels and is rejected
#: by :meth:`ArrayBackend.require`.
REQUIRED_OPS = (
    "ndarray",
    "dtype",
    "empty",
    "zeros",
    "ones",
    "empty_like",
    "zeros_like",
    "asarray",
    "ascontiguousarray",
    "stack",
    "concatenate",
    "repeat",
    "arange",
    "matmul",
    "einsum",
    "maximum",
    "exp",
    "log",
    "tanh",
    "sqrt",
    "abs",
    "clip",
    "where",
    "isfinite",
    "errstate",
    "issubdtype",
    "floating",
    "float64",
    "float32",
    "add.at",
    "add.reduceat",
    "maximum.reduceat",
    "random.default_rng",
)


def probe_capabilities(namespace) -> Dict[str, bool]:
    """Map each :data:`REQUIRED_OPS` entry to whether ``namespace`` has it.

    Dotted names traverse attributes (``"add.at"`` → ``namespace.add.at``),
    so ufunc methods and submodule functions probe the same way.
    """
    caps: Dict[str, bool] = {}
    for op in REQUIRED_OPS:
        target = namespace
        ok = True
        for part in op.split("."):
            target = getattr(target, part, None)
            if target is None:
                ok = False
                break
        caps[op] = ok
    return caps


def _numpy_make_rng(seed=None):
    return numpy.random.default_rng(seed)


class ArrayBackend:
    """One pluggable array namespace plus its policy hooks.

    Parameters
    ----------
    name : registry name ("numpy", "cupy", ...).
    xp : the namespace object all kernel array ops route through.
    default_dtype : compute dtype when neither an explicit argument nor
        ``$REPRO_DTYPE`` selects one. float64 everywhere today — it is
        the serial-equivalence reference.
    make_rng : seed -> generator adapter. The default returns a host
        NumPy ``Generator``; device backends override this to return a
        generator whose draws materialize on-device (mask/perm pre-draw
        stays on the host path regardless, to preserve serial RNG-stream
        equivalence).
    to_numpy : device array -> host ndarray hook (identity for NumPy).
    """

    __slots__ = ("name", "xp", "default_dtype", "make_rng", "to_numpy", "_caps")

    def __init__(
        self,
        name: str,
        xp,
        default_dtype: str = "float64",
        make_rng: Optional[Callable] = None,
        to_numpy: Optional[Callable] = None,
    ):
        if default_dtype not in SUPPORTED_DTYPES:
            raise ValueError(
                f"default_dtype must be one of {SUPPORTED_DTYPES}, got {default_dtype!r}"
            )
        self.name = name
        self.xp = xp
        self.default_dtype = default_dtype
        self.make_rng = make_rng if make_rng is not None else _numpy_make_rng
        self.to_numpy = to_numpy if to_numpy is not None else (lambda a: numpy.asarray(a))
        self._caps: Optional[Dict[str, bool]] = None

    @property
    def capabilities(self) -> Dict[str, bool]:
        """Probe results over :data:`REQUIRED_OPS` (computed once)."""
        if self._caps is None:
            self._caps = probe_capabilities(self.xp)
        return self._caps

    @property
    def missing_ops(self) -> Tuple[str, ...]:
        """Required ops the namespace does not provide."""
        return tuple(op for op, ok in self.capabilities.items() if not ok)

    def require(self) -> "ArrayBackend":
        """Raise unless the namespace passes the capability probe."""
        missing = self.missing_ops
        if missing:
            raise RuntimeError(
                f"backend {self.name!r} is missing required array ops: "
                f"{', '.join(missing)} — the slab kernels cannot run on it"
            )
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArrayBackend(name={self.name!r}, default_dtype={self.default_dtype!r})"


def _make_numpy_backend() -> ArrayBackend:
    return ArrayBackend("numpy", numpy)


def _make_cupy_backend() -> ArrayBackend:
    try:
        import cupy  # noqa: F401 - optional dependency, never vendored
    except ImportError as exc:  # pragma: no cover - cupy not installed here
        raise RuntimeError(
            "backend 'cupy' requires the cupy package, which is not "
            "installed in this environment"
        ) from exc
    return ArrayBackend(
        "cupy",
        cupy,
        make_rng=lambda seed=None: cupy.random.default_rng(seed),
        to_numpy=lambda a: cupy.asnumpy(a),
    )


def _make_torch_backend() -> ArrayBackend:
    try:
        import torch  # noqa: F401 - optional dependency, never vendored
    except ImportError as exc:  # pragma: no cover - torch not installed here
        raise RuntimeError(
            "backend 'torch' requires the torch package, which is not "
            "installed in this environment"
        ) from exc
    # torch's top-level namespace is close to — but not — the NumPy API
    # (no errstate, no ufunc .at/.reduceat); require() reports exactly
    # which seams still need an adapter layer rather than failing inside
    # a kernel.
    return ArrayBackend("torch", torch)


_FACTORIES: Dict[str, Callable[[], ArrayBackend]] = {
    "numpy": _make_numpy_backend,
    "cupy": _make_cupy_backend,
    "torch": _make_torch_backend,
}

_active: Optional[ArrayBackend] = None


def register_backend(name: str, factory: Callable[[], ArrayBackend]) -> None:
    """Register (or replace) a backend factory under ``name``.

    The factory is called lazily on first :func:`set_backend`/
    :func:`get_backend` resolution and must return an
    :class:`ArrayBackend`; capability validation happens at activation.
    """
    _FACTORIES[str(name)] = factory


def available_backends() -> Tuple[str, ...]:
    """Registered backend names (registration, not importability)."""
    return tuple(sorted(_FACTORIES))


def get_backend() -> ArrayBackend:
    """The active backend, lazily initialized from ``$REPRO_BACKEND``
    (default "numpy")."""
    global _active
    if _active is None:
        name = os.environ.get(BACKEND_ENV) or "numpy"
        _active = _resolve(name).require()
    return _active


def _resolve(name: str) -> ArrayBackend:
    factory = _FACTORIES.get(name)
    if factory is None:
        raise ValueError(
            f"unknown backend {name!r}; registered: {', '.join(available_backends())}"
        )
    backend = factory()
    if not isinstance(backend, ArrayBackend):
        raise TypeError(
            f"backend factory {name!r} returned {type(backend).__name__}, "
            "not ArrayBackend"
        )
    return backend


def set_backend(backend) -> ArrayBackend:
    """Activate a backend by registry name or :class:`ArrayBackend`.

    The capability probe runs before activation, so a namespace that
    cannot run the kernels never becomes active. Returns the activated
    backend.
    """
    global _active
    if isinstance(backend, str):
        backend = _resolve(backend)
    elif not isinstance(backend, ArrayBackend):
        raise TypeError(f"expected backend name or ArrayBackend, got {type(backend).__name__}")
    _active = backend.require()
    return _active


class use_backend:
    """Context manager: activate a backend for the ``with`` block, then
    restore whatever was active before (including "not yet resolved")."""

    def __init__(self, backend):
        self._backend = backend
        self._prev: Optional[ArrayBackend] = None

    def __enter__(self) -> ArrayBackend:
        global _active
        self._prev = _active
        return set_backend(self._backend)

    def __exit__(self, *exc) -> None:
        global _active
        _active = self._prev


def resolve_dtype(dtype=None) -> "numpy.dtype":
    """The slab compute dtype: explicit argument > ``$REPRO_DTYPE`` >
    backend default (float64). Returns a ``numpy.dtype``; anything
    outside :data:`SUPPORTED_DTYPES` raises ``ValueError``."""
    if dtype is None:
        dtype = os.environ.get(DTYPE_ENV) or None
    if dtype is None:
        dtype = get_backend().default_dtype
    dt = numpy.dtype(dtype)
    if dt.name not in SUPPORTED_DTYPES:
        raise ValueError(
            f"unsupported slab dtype {dt.name!r}; supported: {SUPPORTED_DTYPES}"
        )
    return dt


class _ActiveNamespace:
    """Module-level proxy the kernels import as ``np``: every attribute
    lookup lands on the active backend's namespace, so a backend switch
    redirects already-imported kernel modules."""

    __slots__ = ()

    def __getattr__(self, name):
        return getattr(get_backend().xp, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<xp -> {get_backend().name}>"


#: The array namespace all slab kernels use (``from repro.nn.backend
#: import xp as np``). Attribute access resolves against the active
#: backend at call time.
xp = _ActiveNamespace()
