"""Disk-backed memoization of built configuration banks.

Building a :class:`repro.experiments.bank.ConfigBank` is the single most
expensive step of every bank-driven experiment — it trains the whole
config pool. The build is a pure function of its inputs (dataset identity,
preset, seed, pool size, round cap, ...), so :class:`BankStore` memoizes
finished banks as ``.npz`` files keyed by a canonical hash of exactly
those inputs.

Cache-key contract: *every* argument that can change the resulting bank
must be part of the key fields. :meth:`BankStore.key_fields` assembles the
standard set; any change to any field — a different seed, pool size,
round cap, eta, cohort size, or param storage — produces a different hash
and therefore a rebuild. The key also stamps :data:`BANK_FORMAT_VERSION`,
the semantic version of the training behavior itself: a PR that changes
what a build produces bumps it, and every stale cache entry becomes a
miss automatically. Unknown files are never overwritten or deleted
except through :meth:`clear`.

The cache directory comes from the caller or the ``REPRO_BANK_CACHE``
environment variable (see :class:`repro.experiments.ExperimentContext`).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import warnings
from typing import Callable, Dict, List, Optional

from repro.experiments.bank import ConfigBank

#: Semantic version of the training/evaluation behavior behind a bank
#: build. Bump whenever a PR changes what a build *produces* for the same
#: inputs — kernel semantics, divergence handling, evaluation order — so
#: every stale cache entry auto-invalidates instead of relying on a README
#: warning. History:
#:
#: 2: PR 2's ReLU forward now propagates NaN/-inf inputs instead of
#:    zeroing them, so diverged-config trajectories can early-stop sooner
#:    than pre-PR serial runs; pre-PR caches of diverged configs differ.
BANK_FORMAT_VERSION = 2


class BankStore:
    """File-system cache of built configuration banks.

    Writes are atomic (temp file + ``os.replace``), so a crashed or
    concurrent build can never leave a truncated bank behind; unreadable
    cache entries are quarantined as ``.corrupt`` files and treated as
    misses.
    """

    def __init__(self, cache_dir: str):
        self.cache_dir = str(cache_dir)
        os.makedirs(self.cache_dir, exist_ok=True)

    # -- keys -----------------------------------------------------------------
    @staticmethod
    def key_fields(
        dataset: str,
        preset: str,
        seed: int,
        n_configs: int,
        max_rounds: int,
        **extra,
    ) -> Dict:
        """The canonical key of one bank build.

        ``extra`` carries any further build arguments that influence the
        result (eta, clients_per_round, scheme, store_params, ...). The
        ``format_version`` field stamps :data:`BANK_FORMAT_VERSION` into
        every key, so behavior-changing PRs rebuild stale caches
        automatically.
        """
        fields = {
            "dataset": str(dataset),
            "preset": str(preset),
            "seed": int(seed),
            "n_configs": int(n_configs),
            "max_rounds": int(max_rounds),
            "format_version": BANK_FORMAT_VERSION,
        }
        for name, value in extra.items():
            fields[str(name)] = value
        return fields

    @staticmethod
    def canonical_key(fields: Dict) -> str:
        """Deterministic serialisation of the key fields."""
        return json.dumps(fields, sort_keys=True, separators=(",", ":"), default=str)

    def path_for(self, fields: Dict) -> str:
        """The cache file a key maps to (may not exist yet)."""
        digest = hashlib.sha256(self.canonical_key(fields).encode()).hexdigest()[:20]
        stem = str(fields.get("dataset", "bank")).replace(os.sep, "_")
        return os.path.join(self.cache_dir, f"{stem}-{digest}.npz")

    # -- cache operations -------------------------------------------------------
    def get(self, fields: Dict) -> Optional[ConfigBank]:
        """The cached bank for this key, or ``None`` on a miss.

        A *missing* file is a silent miss. A file that exists but fails to
        load is quarantined — renamed to ``<path>.corrupt`` with a warning
        naming it — so the evidence survives for diagnosis instead of
        being silently overwritten by the rebuild's :meth:`put`.
        """
        path = self.path_for(fields)
        if not os.path.exists(path):
            return None
        try:
            return ConfigBank.load(path)
        except Exception as exc:
            from repro.engine.atomicio import quarantine

            target = quarantine(path) or path
            warnings.warn(
                f"corrupt bank cache entry {path}: {exc!r}; "
                f"quarantined as {target}, treating as a miss",
                RuntimeWarning,
                stacklevel=2,
            )
            return None

    def put(self, fields: Dict, bank: ConfigBank) -> str:
        """Persist a built bank under this key; returns the cache path."""
        path = self.path_for(fields)
        # ".tmp.npz": numpy requires the .npz suffix (it appends one
        # otherwise), while the ".tmp" infix keeps in-progress/orphaned
        # temp files out of paths()/len()/clear().
        fd, tmp = tempfile.mkstemp(suffix=".tmp.npz", dir=self.cache_dir)
        os.close(fd)
        try:
            bank.save(tmp)
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
        return path

    def get_or_build(self, fields: Dict, builder: Callable[[], ConfigBank]) -> ConfigBank:
        """Return the cached bank, building (and storing) it on a miss."""
        bank = self.get(fields)
        if bank is None:
            bank = builder()
            self.put(fields, bank)
        return bank

    # -- maintenance -------------------------------------------------------------
    def paths(self) -> List[str]:
        """All bank files currently in the cache."""
        return sorted(
            os.path.join(self.cache_dir, name)
            for name in os.listdir(self.cache_dir)
            if name.endswith(".npz") and not name.endswith(".tmp.npz")
        )

    def __len__(self) -> int:
        return len(self.paths())

    def clear(self) -> int:
        """Delete every cached bank; returns how many were removed."""
        removed = 0
        for path in self.paths():
            os.unlink(path)
            removed += 1
        return removed
