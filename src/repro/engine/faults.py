"""Deterministic fault injection: client dropout, stragglers, crashes.

The paper's second noise source is *systems heterogeneity* (§3.2): clients
drop out of rounds or straggle behind, biasing which devices participate.
Until this module, the repo modeled that only as a static ``bias_b``
sampling weight; here failure becomes a first-class, *seeded* event that
the engine survives gracefully:

- **Client dropout** — a selected training client fails to report its
  update; the round aggregates over the survivors (or is lost entirely
  when the quorum is missed). See
  :meth:`repro.fl.trainer.FederatedTrainer._finish_round`.
- **Stragglers** — a client reports, but late: the round's simulated
  wall-clock cost grows by ``straggler_delay`` units (the server waits
  for the slowest reporter). Tracked per trainer as ``simulated_time``.
- **Evaluation dropout** — a sampled validation client never reports its
  accuracy, so the *realized* evaluation cohort differs from the drawn
  one: dropout becomes a measurable participation-bias noise source
  (see :class:`repro.core.noise.NoisyEvaluator` and
  :func:`repro.experiments.fig_faults.run_fault_sweep`).
- **Trial failures** — a training step of one trial raises; the runner
  records the failure and, past a failure cap, quarantines the trial
  (error 1.0, like the diverged convention) instead of aborting the run.
- **Worker kills** — a pool worker SIGKILLs itself mid-task, exercising
  the executor's crash-retry path (:mod:`repro.engine.executor`).

Determinism contract
--------------------
Every fault draw is a pure function of ``(seed, scope, coordinates)``
computed with sha256 — no RNG object, no stream, no mutable counter that
execution order could perturb. The coordinates (trainer fault key, round
index, client id, trial id, release index) are themselves part of the
deterministic run state, so:

- the same fault seed injects the *same* faults regardless of cohort mode
  (serial / vectorized / fused), worker count, or batch order;
- a checkpoint/resume replays the identical fault sequence (the plan
  itself has no state to lose — only its config travels, as an echo that
  :meth:`repro.core.tuner.BaseTuner.load_state_dict` validates);
- a zero-rate plan draws nothing and perturbs nothing: the fault-free
  path stays bit-identical to an unfaulted run.

Worker kills are the one scope keyed by a per-process map counter rather
than run state: killed tasks are retried to *identical results* (the
executor's determinism contract), so their exact firing points never
affect trajectories — only coverage of the retry path.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import asdict, dataclass, replace
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

__all__ = [
    "FaultConfig",
    "FaultPlan",
    "ParticipationLog",
    "InjectedFault",
    "InjectedTrialFault",
]

#: Knob aliases accepted by :meth:`FaultConfig.parse` (CLI / $REPRO_FAULTS).
_PARSE_ALIASES = {
    "dropout": "dropout_rate",
    "straggler": "straggler_rate",
    "delay": "straggler_delay",
    "eval_dropout": "eval_dropout_rate",
    "trial_failure": "trial_failure_rate",
    "task_kill": "task_kill_rate",
    "retries": "max_trial_failures",
}
_INT_FIELDS = ("seed", "max_trial_failures")


class InjectedFault(RuntimeError):
    """Base class for faults raised by a :class:`FaultPlan` injection."""


class InjectedTrialFault(InjectedFault):
    """A deterministic injected trial crash (``trial_failure_rate``)."""

    def __init__(self, trial_id: int, rounds: int):
        self.trial_id = trial_id
        self.rounds = rounds
        super().__init__(
            f"injected fault: trial {trial_id} crashed at round {rounds}"
        )


@dataclass(frozen=True)
class FaultConfig:
    """Declarative fault-injection setting (all rates are probabilities).

    ``seed`` keys every fault draw; two plans with the same config inject
    identical fault sequences. ``quorum`` is the minimum *fraction* of a
    sampled cohort that must report for the round (or evaluation release)
    to use the survivors — a training round below quorum is lost (global
    model frozen for that round), an evaluation below quorum falls back
    to the full drawn cohort (the server waited everyone out).
    ``max_trial_failures`` is the failure count at which a trial is
    quarantined (error 1.0, retired from training).
    """

    seed: int = 0
    dropout_rate: float = 0.0
    straggler_rate: float = 0.0
    straggler_delay: float = 2.0
    quorum: float = 0.0
    eval_dropout_rate: float = 0.0
    trial_failure_rate: float = 0.0
    task_kill_rate: float = 0.0
    max_trial_failures: int = 2

    def __post_init__(self) -> None:
        for name in (
            "dropout_rate",
            "straggler_rate",
            "eval_dropout_rate",
            "trial_failure_rate",
            "task_kill_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if not 0.0 <= self.quorum <= 1.0:
            raise ValueError(f"quorum must be in [0, 1], got {self.quorum}")
        if self.straggler_delay < 0:
            raise ValueError(
                f"straggler_delay must be >= 0, got {self.straggler_delay}"
            )
        if self.max_trial_failures < 1:
            raise ValueError(
                f"max_trial_failures must be >= 1, got {self.max_trial_failures}"
            )

    # -- convenience views ---------------------------------------------------
    @property
    def injects_client_faults(self) -> bool:
        """Whether any training-round fault (dropout/straggle) can fire."""
        return self.dropout_rate > 0 or self.straggler_rate > 0

    @property
    def injects_eval_faults(self) -> bool:
        return self.eval_dropout_rate > 0

    @property
    def active(self) -> bool:
        """Whether this config can inject anything at all."""
        return (
            self.injects_client_faults
            or self.injects_eval_faults
            or self.trial_failure_rate > 0
            or self.task_kill_rate > 0
        )

    def min_reporters(self, cohort_size: int) -> int:
        """Quorum resolved to a raw reporter count (always at least 1)."""
        return max(1, math.ceil(self.quorum * cohort_size))

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, fields: Dict) -> "FaultConfig":
        return cls(**fields)

    @classmethod
    def parse(cls, spec: str) -> "FaultConfig":
        """Build a config from ``"knob=value,knob=value"`` (CLI /
        ``$REPRO_FAULTS``). Knobs are the dataclass field names or the
        short aliases ``dropout``, ``straggler``, ``delay``,
        ``eval_dropout``, ``trial_failure``, ``task_kill``, ``retries``.
        An empty spec is an error — "no faults" is spelled by not setting
        the knob at all.
        """
        fields: Dict = {}
        valid = set(cls.__dataclass_fields__)
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(f"fault spec entry {part!r} is not knob=value")
            knob, _, raw = part.partition("=")
            knob = _PARSE_ALIASES.get(knob.strip(), knob.strip())
            if knob not in valid:
                raise ValueError(
                    f"unknown fault knob {knob!r}; choose from "
                    f"{sorted(valid | set(_PARSE_ALIASES))}"
                )
            try:
                fields[knob] = int(raw) if knob in _INT_FIELDS else float(raw)
            except ValueError:
                raise ValueError(
                    f"fault knob {knob!r} needs a number, got {raw!r}"
                ) from None
        if not fields:
            raise ValueError(f"empty fault spec {spec!r}")
        return cls(**fields)

    def reseeded(self, *parts) -> "FaultConfig":
        """A copy whose seed is derived from this seed plus ``parts`` —
        how sweeps give every (dataset, method, trial) run its own fault
        stream while staying reproducible."""
        key = "/".join(str(p) for p in (self.seed, *parts))
        seed = int.from_bytes(hashlib.sha256(key.encode()).digest()[:4], "big")
        return replace(self, seed=seed)


def _uniform(seed: int, scope: str, coords: tuple) -> float:
    """One deterministic uniform in [0, 1) keyed by (seed, scope, coords)."""
    key = f"{seed}/{scope}/" + "/".join(str(c) for c in coords)
    digest = hashlib.sha256(key.encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


class FaultPlan:
    """Seeded, order-independent fault event source (see module docstring).

    The plan is *stateless*: every query recomputes its answer from the
    config seed and the caller's coordinates, so the same plan object can
    be shared by a trainer, a runner, an evaluator, and an executor
    without any cross-talk, and a rebuilt plan (after checkpoint/resume)
    answers identically.
    """

    def __init__(self, config: FaultConfig):
        if not isinstance(config, FaultConfig):
            raise TypeError(f"config must be a FaultConfig, got {type(config).__name__}")
        self.config = config

    # -- training-round faults ----------------------------------------------
    def dropout_mask(
        self, key, round_index: int, cohort: Sequence[int]
    ) -> np.ndarray:
        """Which cohort members drop out of this round (bool per member).

        ``key`` identifies the trainer (the runner passes the trial id),
        ``round_index`` its round counter, and the mask is keyed per
        *client id* — so whether client k drops in trainer t's round r
        never depends on who else was sampled.
        """
        rate = self.config.dropout_rate
        if rate <= 0.0:
            return np.zeros(len(cohort), dtype=bool)
        seed = self.config.seed
        return np.array(
            [_uniform(seed, "drop", (key, round_index, int(k))) < rate for k in cohort],
            dtype=bool,
        )

    def straggler_mask(
        self, key, round_index: int, cohort: Sequence[int]
    ) -> np.ndarray:
        """Which cohort members straggle (report late) this round."""
        rate = self.config.straggler_rate
        if rate <= 0.0:
            return np.zeros(len(cohort), dtype=bool)
        seed = self.config.seed
        return np.array(
            [
                _uniform(seed, "straggle", (key, round_index, int(k))) < rate
                for k in cohort
            ],
            dtype=bool,
        )

    # -- evaluation faults ---------------------------------------------------
    def eval_dropout_mask(
        self, key, release_index: int, cohort: Sequence[int]
    ) -> np.ndarray:
        """Which sampled evaluation clients fail to report this release."""
        rate = self.config.eval_dropout_rate
        if rate <= 0.0:
            return np.zeros(len(cohort), dtype=bool)
        seed = self.config.seed
        return np.array(
            [
                _uniform(seed, "eval-drop", (key, release_index, int(k))) < rate
                for k in cohort
            ],
            dtype=bool,
        )

    # -- engine faults -------------------------------------------------------
    def trial_fails(self, trial_id: int, rounds: int) -> bool:
        """Whether an advance of ``trial_id`` starting at ``rounds``
        crashes (checked once per advance attempt, before training)."""
        rate = self.config.trial_failure_rate
        if rate <= 0.0:
            return False
        return _uniform(self.config.seed, "trial", (trial_id, rounds)) < rate

    def task_kills(self, map_index: int, task) -> bool:
        """Whether the worker running ``task`` of executor map call
        ``map_index`` should be killed (SIGKILL) mid-task."""
        rate = self.config.task_kill_rate
        if rate <= 0.0:
            return False
        return _uniform(self.config.seed, "task", (map_index, task)) < rate

    # -- passthroughs --------------------------------------------------------
    @property
    def active(self) -> bool:
        return self.config.active

    @property
    def injects_client_faults(self) -> bool:
        return self.config.injects_client_faults

    @property
    def injects_eval_faults(self) -> bool:
        return self.config.injects_eval_faults

    def min_reporters(self, cohort_size: int) -> int:
        return self.config.min_reporters(cohort_size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({self.config!r})"


class ParticipationLog:
    """Per-client realized-participation counters for one client pool.

    This is what turns injected faults into a *measurable* noise source:
    ``selected`` counts how often each client was drawn, ``dropped`` how
    often it then failed to report, ``straggled`` how often it reported
    late. :meth:`availability_weights` converts the realized survival
    frequencies into selection weights shaped exactly like
    :func:`repro.fl.sampling.biased_weights` — the empirical counterpart
    of the paper's ``(a_k + δ)^b`` systems-heterogeneity model, ready to
    compose with it (see :meth:`repro.fl.sampling.BiasedSampler.sample`).
    """

    def __init__(self, n_clients: int):
        if n_clients < 1:
            raise ValueError(f"n_clients must be >= 1, got {n_clients}")
        self.selected = np.zeros(n_clients, dtype=np.int64)
        self.dropped = np.zeros(n_clients, dtype=np.int64)
        self.straggled = np.zeros(n_clients, dtype=np.int64)
        self.rounds = 0
        self.rounds_lost = 0
        self.simulated_time = 0.0

    @property
    def n_clients(self) -> int:
        return self.selected.size

    def record_round(
        self,
        cohort: Sequence[int],
        dropped: Optional[Iterable[int]] = None,
        straggled: Optional[Iterable[int]] = None,
        lost: bool = False,
        delay: float = 0.0,
    ) -> None:
        """Record one round/release: who was drawn, who dropped, who
        straggled, whether the round was lost to the quorum, and its
        simulated extra wall-clock delay."""
        cohort = np.asarray(cohort, dtype=np.intp)
        np.add.at(self.selected, cohort, 1)
        if dropped is not None:
            dropped = np.asarray(list(dropped), dtype=np.intp)
            if dropped.size:
                np.add.at(self.dropped, dropped, 1)
        if straggled is not None:
            straggled = np.asarray(list(straggled), dtype=np.intp)
            if straggled.size:
                np.add.at(self.straggled, straggled, 1)
        self.rounds += 1
        if lost:
            self.rounds_lost += 1
        self.simulated_time += 1.0 + float(delay)

    # -- measurement ---------------------------------------------------------
    def survival_rates(self) -> np.ndarray:
        """Per-client realized report rate: reported / selected (clients
        never selected report rate 1.0 — no evidence against them)."""
        rates = np.ones(self.n_clients, dtype=np.float64)
        seen = self.selected > 0
        reported = self.selected[seen] - self.dropped[seen]
        rates[seen] = reported / self.selected[seen]
        return rates

    def availability_weights(self, delta: float = 1e-4) -> np.ndarray:
        """Empirical availability as normalized selection weights
        ``(survival_k + δ) / Σ`` — plug-compatible with
        :func:`repro.fl.sampling.biased_weights`."""
        w = self.survival_rates() + delta
        return w / w.sum()

    def drop_fraction(self) -> float:
        """Realized fraction of selections that were dropped."""
        total = int(self.selected.sum())
        return float(self.dropped.sum() / total) if total else 0.0

    # -- state transport -----------------------------------------------------
    def state_dict(self) -> Dict:
        return {
            "selected": self.selected.copy(),
            "dropped": self.dropped.copy(),
            "straggled": self.straggled.copy(),
            "rounds": self.rounds,
            "rounds_lost": self.rounds_lost,
            "simulated_time": self.simulated_time,
        }

    def load_state_dict(self, state: Dict) -> None:
        self.selected = np.asarray(state["selected"], dtype=np.int64).copy()
        self.dropped = np.asarray(state["dropped"], dtype=np.int64).copy()
        self.straggled = np.asarray(state["straggled"], dtype=np.int64).copy()
        self.rounds = int(state["rounds"])
        self.rounds_lost = int(state["rounds_lost"])
        self.simulated_time = float(state["simulated_time"])
