"""Parallel trial-execution engine.

The engine is the execution substrate underneath every online experiment:

- :mod:`repro.engine.executor` — a process-pool map primitive
  (:class:`ProcessExecutor`) built for this codebase's constraints:
  datasets hold closures and are *not* picklable, so heavy shared state
  rides a fork-inherited payload and only small, picklable results cross
  process boundaries. :class:`SerialExecutor` is the drop-in fallback and
  the reference for bit-equivalence.
- :mod:`repro.engine.runner` — :class:`ParallelTrialRunner`, a
  :class:`repro.core.evaluator.FederatedTrialRunner` whose
  ``advance_many`` batch API fans independent trials across workers while
  preserving per-trial deterministic seeding.
- :mod:`repro.engine.bank_store` — :class:`BankStore`, a disk-backed
  memo of built configuration banks keyed by the full build signature
  ``(dataset, preset, seed, n_configs, max_rounds, ...)``.

Every parallel path is bit-equivalent to its serial counterpart: the only
thing parallelism changes is wall-clock time.
"""

from repro.engine.executor import (
    ProcessExecutor,
    SerialExecutor,
    TrialExecutor,
    default_workers,
    make_executor,
)
from repro.engine.bank_store import BankStore
from repro.engine.runner import ParallelTrialRunner

__all__ = [
    "BankStore",
    "ParallelTrialRunner",
    "ProcessExecutor",
    "SerialExecutor",
    "TrialExecutor",
    "default_workers",
    "make_executor",
]
