"""Parallel trial-execution engine.

The engine is the execution substrate underneath every online experiment:

- :mod:`repro.engine.executor` — a process-pool map primitive
  (:class:`ProcessExecutor`) built for this codebase's constraints:
  datasets hold closures and are *not* picklable, so heavy shared state
  rides a fork-inherited payload and only small, picklable results cross
  process boundaries. :class:`SerialExecutor` is the drop-in fallback and
  the reference for bit-equivalence.
- :mod:`repro.engine.runner` — :class:`ParallelTrialRunner`, a
  :class:`repro.core.evaluator.FederatedTrialRunner` whose
  ``advance_many`` batch API fans independent trials across workers while
  preserving per-trial deterministic seeding.
- :mod:`repro.engine.trialfuse` — :class:`TrialFusedRunner`, the
  in-process counterpart: ``advance_many`` merges every
  same-architecture trial of a batch into one cross-trial ``(T*C, P)``
  parameter slab and trains the whole rung in lockstep
  (``cohort_mode="fused"``).
- :mod:`repro.engine.bank_store` — :class:`BankStore`, a disk-backed
  memo of built configuration banks keyed by the full build signature
  ``(dataset, preset, seed, n_configs, max_rounds, format_version, ...)``.
- :mod:`repro.engine.checkpoint` — atomic on-disk checkpoint/resume for
  tuning runs: :func:`save_checkpoint`/:func:`resume_checkpoint` and the
  :class:`RunCheckpointer` periodic save hook serialize tuner + runner +
  RNG state so a preempted run continues bit-identically.

Every parallel path is bit-equivalent to its serial counterpart (the
fused path additionally tolerates ~1e-15/round ragged-padding drift,
documented in :mod:`repro.fl.cohort`): the only thing the engine changes
is wall-clock time.
"""

from repro.engine.executor import (
    ProcessExecutor,
    SerialExecutor,
    TrialExecutor,
    WorkerCrashedError,
    default_workers,
    make_executor,
)
from repro.engine.bank_store import BANK_FORMAT_VERSION, BankStore
from repro.engine.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointError,
    CheckpointVersionError,
    RunCheckpointer,
    load_checkpoint,
    resume_checkpoint,
    save_checkpoint,
)
from repro.engine.runner import ParallelTrialRunner
from repro.engine.trialfuse import TrialFusedRunner

__all__ = [
    "BANK_FORMAT_VERSION",
    "BankStore",
    "CHECKPOINT_FORMAT_VERSION",
    "CheckpointError",
    "CheckpointVersionError",
    "ParallelTrialRunner",
    "ProcessExecutor",
    "RunCheckpointer",
    "SerialExecutor",
    "TrialExecutor",
    "TrialFusedRunner",
    "WorkerCrashedError",
    "default_workers",
    "load_checkpoint",
    "make_executor",
    "resume_checkpoint",
    "save_checkpoint",
]
