"""ParallelTrialRunner: a live federated runner with a process pool.

A thin convenience over :class:`repro.core.evaluator.FederatedTrialRunner`
that wires in a :class:`repro.engine.executor.ProcessExecutor`, so
Hyperband rungs, random-search batches, and any other ``advance_many``
caller fan trial training across worker processes — and ``error_rates_many``
batches fan whole-rung *evaluation* the same way (each worker runs the
serial reference evaluation and ships back only its rate vector; rates
consume no RNG, so nothing merges back). Results are bit-identical to the
serial runner for the same seed — each trial's trainer owns its RNG stream
and round-trips its state through the worker.
"""

from __future__ import annotations

from typing import Optional

from repro.core.evaluator import FederatedTrialRunner
from repro.datasets.base import FederatedDataset
from repro.engine.executor import make_executor
from repro.utils.rng import SeedLike


class ParallelTrialRunner(FederatedTrialRunner):
    """A :class:`FederatedTrialRunner` whose batch API runs on a pool.

    ``n_workers=None`` resolves via ``REPRO_WORKERS`` / the CPU count; a
    resolved count of 1 (or a platform without ``fork``) degrades to the
    plain serial runner — or, with ``cohort_mode="fused"``, to in-process
    cross-trial slab fusion (see :mod:`repro.engine.trialfuse`).
    """

    def __init__(
        self,
        dataset: FederatedDataset,
        max_rounds: int,
        clients_per_round: int = 10,
        scheme: str = "weighted",
        seed: SeedLike = 0,
        n_workers: Optional[int] = None,
        cohort_mode: Optional[str] = None,
        cohort_dtype=None,
        faults=None,
    ):
        super().__init__(
            dataset,
            max_rounds,
            clients_per_round=clients_per_round,
            scheme=scheme,
            seed=seed,
            executor=make_executor(n_workers),
            cohort_mode=cohort_mode,
            cohort_dtype=cohort_dtype,
        )
        if faults is not None:
            # Wires injected trial crashes, trainer dropout/stragglers, and
            # executor worker kills in one move (see TrialRunner.set_fault_plan).
            self.set_fault_plan(faults)

    @property
    def n_workers(self) -> int:
        return self.executor.n_workers
