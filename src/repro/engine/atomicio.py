"""Shared atomic-file primitives for the engine's on-disk state.

Every durable artifact in the system — bank caches, run checkpoints, the
tuning service's experiment records and job journal — follows the same two
rules:

1. **Writes are atomic.** A record is staged in a temp file in the target
   directory and published with ``os.replace``, so a crash mid-write can
   never leave a truncated file where a reader expects a complete one: the
   path always holds the previous complete version or the new one.
2. **Corruption is quarantined, never destroyed.** A file that exists but
   fails to load is moved aside to a collision-safe ``<path>.corrupt[.N]``
   name — repeated corruption events each keep their own evidence file
   instead of clobbering the previous post-mortem — and the caller treats
   the load as a miss.

:func:`quarantine` centralizes rule 2 for :mod:`repro.engine.bank_store`,
:mod:`repro.engine.checkpoint`, and :mod:`repro.service.store`.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Optional


def next_quarantine_path(path: str) -> str:
    """First unused quarantine name for ``path``.

    ``<path>.corrupt`` if free, else ``<path>.corrupt.1``,
    ``<path>.corrupt.2``, ... — so a file that goes corrupt repeatedly
    (or two distinct corruption events racing on the same entry) never
    overwrites the evidence from an earlier event.
    """
    candidate = path + ".corrupt"
    counter = 0
    while os.path.exists(candidate):
        counter += 1
        candidate = f"{path}.corrupt.{counter}"
    return candidate


def quarantine(path: str) -> Optional[str]:
    """Move a corrupt file aside; returns the quarantine path, or ``None``
    when the move itself failed (read-only filesystem, vanished file, ...).

    The existence probe and the rename are not one atomic step, so two
    processes quarantining the *same* file at the same instant could pick
    the same target — but ``os.replace`` of the same source is idempotent
    (one of them wins, the evidence survives once), which is exactly the
    at-least-once guarantee the callers need.
    """
    target = next_quarantine_path(path)
    try:
        os.replace(path, target)
    except OSError:
        return None
    return target


def atomic_write_bytes(path: str, data: bytes) -> str:
    """Atomically publish ``data`` at ``path`` (temp file + ``os.replace``)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(suffix=".tmp", dir=directory)
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return path


def atomic_write_json(path: str, obj: Any) -> str:
    """Atomically publish ``obj`` as canonical JSON (sorted keys, stable
    separators — byte-identical output for equal values)."""
    payload = json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n"
    return atomic_write_bytes(path, payload.encode("utf-8"))


def read_json(path: str) -> Any:
    """Load a JSON file written by :func:`atomic_write_json` (raises on
    missing or corrupt files; callers decide whether to quarantine)."""
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)
