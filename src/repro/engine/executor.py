"""Process-pool execution primitive for independent trial work.

Design constraints, in order of importance:

1. **Determinism.** ``executor.map(fn, tasks, payload)`` must return exactly
   what a serial ``[fn(payload, t) for t in tasks]`` returns, in order. All
   randomness must already be bound into ``payload``/``tasks`` by the
   caller (e.g. per-trial seeds drawn serially before dispatch).
2. **Unpicklable shared state.** Datasets carry model-builder closures and
   cannot cross a pickle boundary. The payload therefore travels to
   workers by *fork inheritance*: it is parked in a module-level slot just
   before the pool forks, and workers read their inherited copy. Only the
   per-task argument and the per-task result are pickled, so ``fn`` must
   return plain data (arrays, dicts, numbers).
3. **Graceful degradation.** On platforms without ``fork``, with a single
   worker, with a single task, or when already inside a worker process,
   ``map`` silently runs serially — same results, no surprises.
4. **Crash diagnosis.** A worker dying mid-task (OOM kill, segfault)
   raises an opaque ``BrokenProcessPool`` from stdlib pools. ``map``
   instead re-runs the affected tasks serially in the parent — a
   one-shot retry that converts transient kills into a completed, still
   bit-identical map — and only then raises :class:`WorkerCrashedError`
   naming the task that brought the pool down.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor as _PoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, List, Optional, Sequence

# Fork-inherited slot: (fn, payload) for the map() currently in flight.
# Workers fork after this is set and read their copy-on-write view; the
# parent clears it as soon as the pool is done.
_PAYLOAD: Any = None

# Set in worker processes so nested map() calls degrade to serial instead
# of forking pools from inside pool workers.
_IN_WORKER = False


def _mark_worker() -> None:
    global _IN_WORKER
    _IN_WORKER = True


class WorkerCrashedError(RuntimeError):
    """A pool worker died mid-task (killed, segfaulted, OOM-reaped) and
    the serial in-parent retry of that task failed too.

    Carries the offending task so callers can log *which* trial/config
    brought the worker down instead of an anonymous BrokenProcessPool.
    """

    def __init__(self, task: Any, detail: str = ""):
        self.task = task
        message = f"worker process died while running task {task!r}"
        if detail:
            message = f"{message} ({detail})"
        super().__init__(message)


def _invoke(task: Any) -> Any:
    fn, payload = _PAYLOAD
    return fn(payload, task)


def fork_available() -> bool:
    """Whether the fork start method (required for unpicklable payloads)
    exists on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def default_workers() -> int:
    """Worker count from ``REPRO_WORKERS`` (else: one per CPU)."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(f"REPRO_WORKERS must be an integer, got {env!r}") from None
    return max(1, os.cpu_count() or 1)


class TrialExecutor:
    """Interface: ordered parallel map with a fork-shared payload."""

    n_workers: int = 1

    def map(
        self,
        fn: Callable[[Any, Any], Any],
        tasks: Sequence[Any],
        payload: Any = None,
    ) -> List[Any]:
        """Return ``[fn(payload, task) for task in tasks]`` (order kept)."""
        raise NotImplementedError


class SerialExecutor(TrialExecutor):
    """In-process reference implementation."""

    def map(self, fn, tasks, payload=None):
        return [fn(payload, task) for task in tasks]


class ProcessExecutor(TrialExecutor):
    """Fork-based process-pool executor.

    A fresh pool is created per :meth:`map` call so each fork snapshots
    the current payload; worker startup is cheap under copy-on-write.
    """

    def __init__(self, n_workers: Optional[int] = None):
        self.n_workers = n_workers if n_workers is not None else default_workers()
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")

    def map(self, fn, tasks, payload=None):
        tasks = list(tasks)
        if (
            len(tasks) <= 1
            or self.n_workers <= 1
            or _IN_WORKER
            or not fork_available()
        ):
            return SerialExecutor().map(fn, tasks, payload)
        global _PAYLOAD
        _PAYLOAD = (fn, payload)
        try:
            ctx = multiprocessing.get_context("fork")
            workers = min(self.n_workers, len(tasks))
            results: List[Any] = [None] * len(tasks)
            crashed: List[int] = []
            with _PoolExecutor(
                max_workers=workers, mp_context=ctx, initializer=_mark_worker
            ) as pool:
                futures = [pool.submit(_invoke, task) for task in tasks]
                for i, future in enumerate(futures):
                    try:
                        results[i] = future.result()
                    except BrokenProcessPool:
                        crashed.append(i)
            # One serial in-parent retry per crashed task. A dying worker
            # breaks every task queued behind it, so most entries here are
            # innocent bystanders; fn is deterministic, so retried results
            # are exactly what the workers would have produced. A task
            # whose retry *also* fails is the actual culprit — name it.
            for i in crashed:
                try:
                    results[i] = fn(payload, tasks[i])
                except Exception as exc:
                    raise WorkerCrashedError(
                        tasks[i], detail=f"serial retry failed: {exc}"
                    ) from exc
            return results
        finally:
            _PAYLOAD = None


def make_executor(n_workers: Optional[int] = None) -> TrialExecutor:
    """Build the right executor for ``n_workers``.

    ``None`` resolves via :func:`default_workers` (``REPRO_WORKERS`` or the
    CPU count); a resolved count of 1 yields a :class:`SerialExecutor`.
    """
    workers = n_workers if n_workers is not None else default_workers()
    if workers <= 1 or not fork_available():
        return SerialExecutor()
    return ProcessExecutor(workers)
