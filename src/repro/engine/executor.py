"""Process-pool execution primitive for independent trial work.

Design constraints, in order of importance:

1. **Determinism.** ``executor.map(fn, tasks, payload)`` must return exactly
   what a serial ``[fn(payload, t) for t in tasks]`` returns, in order. All
   randomness must already be bound into ``payload``/``tasks`` by the
   caller (e.g. per-trial seeds drawn serially before dispatch).
2. **Unpicklable shared state.** Datasets carry model-builder closures and
   cannot cross a pickle boundary. The payload therefore travels to
   workers by *fork inheritance*: it is parked in a module-level slot just
   before the pool forks, and workers read their inherited copy. Only the
   per-task argument and the per-task result are pickled, so ``fn`` must
   return plain data (arrays, dicts, numbers).
3. **Graceful degradation.** On platforms without ``fork``, with a single
   worker, with a single task, or when already inside a worker process,
   ``map`` silently runs serially — same results, no surprises.
4. **Crash containment.** A worker dying mid-task (OOM kill, segfault)
   raises an opaque ``BrokenProcessPool`` from stdlib pools, and a hung
   worker blocks forever. ``map`` instead re-runs the affected tasks
   through a bounded retry schedule with exponential backoff —
   ``max_retries`` pooled attempts (``REPRO_MAX_RETRIES``), the last of
   which runs serially in the parent, each preceded by one warning naming
   the retried tasks. ``fn`` is deterministic, so retried results are
   exactly what the workers would have produced; only a task that fails
   on its final attempt raises :class:`WorkerCrashedError` (or
   :class:`TaskTimeoutError` when it exceeded the per-task ``timeout`` /
   ``REPRO_TASK_TIMEOUT``) naming the culprit.

A :class:`repro.engine.faults.FaultPlan` with a nonzero ``task_kill_rate``
can be attached to deterministically SIGKILL workers mid-task (chaos
testing of the retry machinery); injected kills never change results —
the retry schedule always converges to the serial in-parent answer.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
import warnings
from concurrent.futures import ProcessPoolExecutor as _PoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, List, Optional, Sequence

# Fork-inherited slot: (fn, payload, fault plan, map index) for the map()
# attempt currently in flight. Workers fork after this is set and read
# their copy-on-write view; the parent clears it as soon as the pool is
# done.
_PAYLOAD: Any = None

# Set in worker processes so nested map() calls degrade to serial instead
# of forking pools from inside pool workers.
_IN_WORKER = False

# The fork-inherited payload slot above is process-global, so only one
# pooled attempt may be in flight at a time. The tuning-service daemon
# (repro.service) runs several jobs as threads over ONE shared executor;
# this lock serializes their pooled attempts so a fork can never snapshot
# another thread's payload. Single-threaded callers never contend.
_POOL_LOCK = threading.Lock()


def _mark_worker() -> None:
    global _IN_WORKER
    _IN_WORKER = True


class WorkerCrashedError(RuntimeError):
    """A pool worker died mid-task (killed, segfaulted, OOM-reaped) and
    every retry of that task — including the final serial in-parent
    attempt — failed too.

    Carries the offending task so callers can log *which* trial/config
    brought the worker down instead of an anonymous BrokenProcessPool.
    """

    def __init__(self, task: Any, detail: str = ""):
        self.task = task
        message = f"worker process died while running task {task!r}"
        if detail:
            message = f"{message} ({detail})"
        super().__init__(message)


class TaskTimeoutError(WorkerCrashedError):
    """A pool task exceeded the per-task timeout on its final attempt."""

    def __init__(self, task: Any, timeout: float):
        self.timeout = timeout
        super().__init__(task, detail=f"exceeded the {timeout:g}s task timeout")


def _invoke(task: Any) -> Any:
    fn, payload, plan, map_index = _PAYLOAD
    if plan is not None and _IN_WORKER and plan.task_kills(map_index, task):
        # Injected chaos: die the way an OOM-reaped worker dies. Keyed by
        # the per-attempt map index, so a retry of this task redraws.
        os.kill(os.getpid(), signal.SIGKILL)
    return fn(payload, task)


def fork_available() -> bool:
    """Whether the fork start method (required for unpicklable payloads)
    exists on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def default_workers() -> int:
    """Worker count from ``REPRO_WORKERS`` (else: one per CPU)."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(f"REPRO_WORKERS must be an integer, got {env!r}") from None
    return max(1, os.cpu_count() or 1)


def default_max_retries() -> int:
    """Retry budget from ``REPRO_MAX_RETRIES`` (else 1 — the final serial
    in-parent attempt, matching the engine's original behavior)."""
    env = os.environ.get("REPRO_MAX_RETRIES")
    if env:
        try:
            value = int(env)
        except ValueError:
            raise ValueError(
                f"REPRO_MAX_RETRIES must be an integer, got {env!r}"
            ) from None
        if value < 1:
            raise ValueError(f"REPRO_MAX_RETRIES must be >= 1, got {value}")
        return value
    return 1


def default_task_timeout() -> Optional[float]:
    """Per-task timeout in seconds from ``REPRO_TASK_TIMEOUT`` (else None —
    no timeout; 0 also means no timeout)."""
    env = os.environ.get("REPRO_TASK_TIMEOUT")
    if env:
        try:
            value = float(env)
        except ValueError:
            raise ValueError(
                f"REPRO_TASK_TIMEOUT must be a number of seconds, got {env!r}"
            ) from None
        if value < 0:
            raise ValueError(f"REPRO_TASK_TIMEOUT must be >= 0, got {value}")
        return value if value > 0 else None
    return None


class TrialExecutor:
    """Interface: ordered parallel map with a fork-shared payload."""

    n_workers: int = 1

    def map(
        self,
        fn: Callable[[Any, Any], Any],
        tasks: Sequence[Any],
        payload: Any = None,
        max_workers: Optional[int] = None,
    ) -> List[Any]:
        """Return ``[fn(payload, task) for task in tasks]`` (order kept).

        ``max_workers`` optionally caps the parallelism of this one call
        below the executor's pool size (per-job resource caps in the
        tuning service); results never depend on it.
        """
        raise NotImplementedError


class SerialExecutor(TrialExecutor):
    """In-process reference implementation."""

    def map(self, fn, tasks, payload=None, max_workers=None):
        return [fn(payload, task) for task in tasks]


class ProcessExecutor(TrialExecutor):
    """Fork-based process-pool executor.

    A fresh pool is created per :meth:`map` attempt so each fork snapshots
    the current payload; worker startup is cheap under copy-on-write.

    Parameters
    ----------
    n_workers : pool size (``None``: ``REPRO_WORKERS`` / CPU count).
    max_retries : crash/timeout retry budget per map call (``None``:
        ``REPRO_MAX_RETRIES``, default 1). Retries before the last re-run
        the affected tasks in a fresh pool; the last retry runs them
        serially in the parent. Each retry emits one RuntimeWarning naming
        the retried tasks and sleeps an exponential backoff beforehand.
    backoff_base, backoff_cap : the sleep before retry ``k`` is
        ``min(backoff_cap, backoff_base * 2**(k-1))`` seconds.
    timeout : per-task timeout in seconds (``None``: ``REPRO_TASK_TIMEOUT``,
        default no timeout). A task that exceeds it has its pool torn down
        (hung workers killed) and is retried; timing out on the final
        attempt raises :class:`TaskTimeoutError`. The final serial retry is
        not subjected to the timeout *unless* the task already timed out
        in a pool — a task that only ever hangs raises rather than hanging
        the parent.
    faults : optional :class:`repro.engine.faults.FaultPlan` whose
        ``task_kill_rate`` SIGKILLs workers mid-task (chaos testing).
    """

    def __init__(
        self,
        n_workers: Optional[int] = None,
        max_retries: Optional[int] = None,
        backoff_base: float = 0.1,
        backoff_cap: float = 5.0,
        timeout: Optional[float] = None,
        faults=None,
    ):
        self.n_workers = n_workers if n_workers is not None else default_workers()
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        self.max_retries = max_retries if max_retries is not None else default_max_retries()
        if self.max_retries < 1:
            raise ValueError(f"max_retries must be >= 1, got {self.max_retries}")
        if backoff_base < 0 or backoff_cap < 0:
            raise ValueError(
                f"backoff must be >= 0, got base={backoff_base}, cap={backoff_cap}"
            )
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.timeout = timeout if timeout is not None else default_task_timeout()
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")
        self.faults = faults
        # Per-attempt counter keying injected kill draws: a retried task
        # redraws, so injection exercises the retry path without ever
        # changing results. Deliberately NOT part of any serialized state —
        # kills are result-invariant, only coverage-relevant.
        self._attempts = 0

    def map(self, fn, tasks, payload=None, max_workers=None):
        tasks = list(tasks)
        workers = self.n_workers
        if max_workers is not None:
            workers = min(workers, max(1, int(max_workers)))
        if (
            len(tasks) <= 1
            or workers <= 1
            or _IN_WORKER
            or not fork_available()
        ):
            return SerialExecutor().map(fn, tasks, payload)
        results: List[Any] = [None] * len(tasks)
        pending = list(range(len(tasks)))
        ever_timed_out: set = set()
        for attempt in range(self.max_retries + 1):
            if attempt > 0:
                delay = min(self.backoff_cap, self.backoff_base * 2 ** (attempt - 1))
                names = ", ".join(repr(tasks[i]) for i in pending)
                mode = "serially in the parent" if attempt == self.max_retries else "in a fresh pool"
                warnings.warn(
                    f"retry {attempt}/{self.max_retries} for {len(pending)} "
                    f"task(s) [{names}] {mode} after {delay:.2g}s backoff",
                    RuntimeWarning,
                    stacklevel=2,
                )
                if delay > 0:
                    time.sleep(delay)
            if attempt == self.max_retries:
                # Final attempt: serial, in-parent, no injection — the one
                # environment where only a genuinely-broken task can fail.
                for i in pending:
                    if i in ever_timed_out:
                        raise TaskTimeoutError(tasks[i], self.timeout)
                    try:
                        results[i] = fn(payload, tasks[i])
                    except Exception as exc:
                        raise WorkerCrashedError(
                            tasks[i], detail=f"serial retry failed: {exc}"
                        ) from exc
                return results
            crashed, timed_out = self._run_pooled(
                fn, payload, tasks, pending, results, workers
            )
            ever_timed_out.update(timed_out)
            pending = sorted(crashed + timed_out)
            if not pending:
                return results
        raise AssertionError("unreachable: retry loop exits via return/raise")

    def _run_pooled(self, fn, payload, tasks, indices, results, max_workers):
        """One pooled attempt over ``tasks[i] for i in indices``; fills
        ``results`` in place and returns ``(crashed, timed_out)`` index
        lists. A dying worker breaks every task queued behind it, so most
        crashed entries are innocent bystanders — the caller retries them.

        Holds :data:`_POOL_LOCK` end to end: the fork-inherited payload
        slot is process-global, so concurrent ``map`` calls from service
        job threads take turns at the pool (their results are unaffected —
        ordering and randomness are bound into the tasks, not the pool).
        """
        with _POOL_LOCK:
            return self._run_pooled_locked(
                fn, payload, tasks, indices, results, max_workers
            )

    def _run_pooled_locked(self, fn, payload, tasks, indices, results, max_workers):
        global _PAYLOAD
        self._attempts += 1
        _PAYLOAD = (fn, payload, self.faults, self._attempts)
        crashed: List[int] = []
        timed_out: List[int] = []
        try:
            ctx = multiprocessing.get_context("fork")
            workers = min(max_workers, len(indices))
            pool = _PoolExecutor(
                max_workers=workers, mp_context=ctx, initializer=_mark_worker
            )
            try:
                futures = {i: pool.submit(_invoke, tasks[i]) for i in indices}
                resolved: set = set()
                for i in indices:
                    try:
                        results[i] = futures[i].result(timeout=self.timeout)
                        resolved.add(i)
                    except BrokenProcessPool:
                        crashed.append(i)
                        resolved.add(i)
                    except _FutureTimeout:
                        # The worker is hung; the whole pool is suspect.
                        # Tear it down and let the caller retry everything
                        # still unresolved.
                        timed_out.append(i)
                        resolved.add(i)
                        break
                if timed_out:
                    for i in indices:
                        if i not in resolved:
                            futures[i].cancel()
                            crashed.append(i)
                    for proc in list(getattr(pool, "_processes", {}).values()):
                        proc.terminate()
                    pool.shutdown(wait=False, cancel_futures=True)
                else:
                    pool.shutdown(wait=True)
            except BaseException:
                pool.shutdown(wait=False, cancel_futures=True)
                raise
        finally:
            _PAYLOAD = None
        return crashed, timed_out


class WorkerCapExecutor(TrialExecutor):
    """A per-tenant view of a shared executor with a worker-count cap.

    The tuning service schedules many jobs onto ONE executor pool; each
    job gets a ``WorkerCapExecutor`` wrapping it so a single tenant can
    never occupy more than its cap of the shared workers. Results are
    identical to running on the shared executor directly (parallelism is
    result-invariant by the executor contract); only throughput changes.
    """

    def __init__(self, base: TrialExecutor, max_workers: Optional[int] = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.base = base
        self.max_workers = max_workers
        self.n_workers = (
            base.n_workers if max_workers is None else min(base.n_workers, max_workers)
        )

    def map(self, fn, tasks, payload=None, max_workers=None):
        cap = self.max_workers
        if max_workers is not None:
            cap = max_workers if cap is None else min(cap, max_workers)
        return self.base.map(fn, tasks, payload, max_workers=cap)


def make_executor(n_workers: Optional[int] = None, faults=None) -> TrialExecutor:
    """Build the right executor for ``n_workers``.

    ``None`` resolves via :func:`default_workers` (``REPRO_WORKERS`` or the
    CPU count); a resolved count of 1 yields a :class:`SerialExecutor`.
    ``faults`` (a :class:`repro.engine.faults.FaultPlan`) rides into the
    process executor for chaos-testing worker kills.
    """
    workers = n_workers if n_workers is not None else default_workers()
    if workers <= 1 or not fork_available():
        return SerialExecutor()
    return ProcessExecutor(workers, faults=faults)
