"""TrialFusedRunner: train whole tuner rungs as one cross-trial slab.

The third execution mode of the engine (after PR 1's process pool and
PR 2's per-trainer vectorized cohorts): every ``advance_many`` batch —
a Hyperband/SHA rung, a random-search batch, a grid sweep, a population
tuner's step (:mod:`repro.core.population`: FedEx weight sharing /
FedPop perturbation, whose populations are *permanent* full-width
batches) — is grouped by model architecture
(:func:`repro.nn.stacked.stack_signature`) and each group trains as one
``(T*C, P)`` parameter slab, all trials' cohorts in lockstep, per-trial
hyperparameters broadcast per slab row
(:class:`repro.fl.fused.FusedTrainerPool`). Population exploit/explore
moves happen *between* slab passes as flat row copies and per-row
hyperparameter-vector edits, so they cost nothing here.

Equivalence to the serial runner (asserted in ``tests/fl/test_fused.py``):
bit-identical when no ragged padding occurs, ~1e-15/round otherwise,
identical per-trial RNG end state, and exact serial fallback for trials
that diverge mid-round. Fused-built banks get their own
:class:`~repro.engine.bank_store.BankStore` cache key (the ``cohort_mode``
key field).

Evaluation fuses too: ``error_rates_many`` groups a rung's trials by
architecture and pushes the whole validation pool through one
:class:`~repro.nn.stacked.StackedModel` inference slab — *borrowing the
training slab the rung just used*, so parameters never unstack/restack
between a rung's training and its promotion scoring. Per trial the rate
vectors are bit-identical to serial ``client_error_rates``
(``tests/fl/test_eval_fused.py``).
"""

from __future__ import annotations

from repro.core.evaluator import FederatedTrialRunner
from repro.datasets.base import FederatedDataset
from repro.utils.rng import SeedLike


class TrialFusedRunner(FederatedTrialRunner):
    """A :class:`FederatedTrialRunner` pinned to ``cohort_mode="fused"``.

    Single-trial ``advance`` calls (and trials whose architecture has no
    stacked kernels) run as plain — per-trainer vectorized — rounds; only
    multi-trial batches fuse. In-process by construction: combine with
    ``REPRO_WORKERS`` by passing ``cohort_mode="fused"`` to
    :class:`~repro.engine.runner.ParallelTrialRunner` instead, which
    prefers process parallelism for the batch and keeps each worker's
    trainer vectorized.
    """

    def __init__(
        self,
        dataset: FederatedDataset,
        max_rounds: int,
        clients_per_round: int = 10,
        scheme: str = "weighted",
        seed: SeedLike = 0,
        cohort_dtype=None,
    ):
        super().__init__(
            dataset,
            max_rounds,
            clients_per_round=clients_per_round,
            scheme=scheme,
            seed=seed,
            cohort_mode="fused",
            cohort_dtype=cohort_dtype,
        )
