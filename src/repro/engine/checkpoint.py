"""Atomic on-disk checkpoint/resume for tuning runs.

A checkpoint captures everything a run needs to survive preemption and
continue *bit-identically*: the tuner's versioned state dict (budget
ledger, observations, curve, incumbent, per-method cursors and internals,
tuner RNG ``bit_generator`` state) and the runner's counterpart (round
accounting, trial-seed RNG stream; live trainer payloads ride inside the
tuner's trial table). The hard contract — asserted method-by-method in
``tests/engine/test_checkpoint.py`` — is that a run killed after any
observation and resumed from its last checkpoint produces the same
``TuningResult`` (observations, curves, DP release counts) and the same
tuner/trainer RNG end states as the uninterrupted run, across serial,
vectorized, and fused cohort modes and any ``REPRO_WORKERS`` setting.

Checkpoints are written atomically (temp file + ``os.replace``, the same
pattern as :meth:`repro.engine.bank_store.BankStore.put`), so a crash
mid-save can never leave a truncated checkpoint behind: the file on disk
is always the previous complete snapshot or the new one.

Tuners call the periodic save hook only at *safe* batch boundaries —
points where the serialized state deterministically replays the remainder
of the current step — so resuming from any checkpoint, at any save
granularity, converges on the identical trajectory.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import warnings
from typing import Dict

#: Version stamp of the on-disk checkpoint layout. Bump whenever the
#: structure of the saved state changes incompatibly; stale checkpoints
#: are rejected with :class:`CheckpointVersionError` instead of being
#: silently misinterpreted mid-run.
CHECKPOINT_FORMAT_VERSION = 1


class CheckpointError(RuntimeError):
    """A checkpoint could not be read, validated, or applied."""


class CheckpointVersionError(CheckpointError):
    """The checkpoint was written under an incompatible format version."""


def _active_precision(tuner) -> Dict:
    """The (cohort_dtype, backend) pair the run is training under.

    Stamped into every checkpoint so a run saved under one precision is
    never silently resumed under another — a float32 run resumed in
    float64 (or vice versa) would not replay bit-identically.
    """
    import numpy as np

    from repro.nn.backend import get_backend, resolve_dtype

    dtype = getattr(tuner.runner, "cohort_dtype", None)
    dtype = np.dtype(dtype) if dtype is not None else resolve_dtype()
    return {"cohort_dtype": dtype.name, "backend": get_backend().name}


def capture_run_state(tuner) -> Dict:
    """Snapshot a tuner + its runner as one plain picklable dict."""
    return {
        "format_version": CHECKPOINT_FORMAT_VERSION,
        "method": tuner.method_name,
        "precision": _active_precision(tuner),
        "tuner": tuner.state_dict(),
        "runner": tuner.runner.state_dict(),
    }


def restore_run_state(tuner, state: Dict):
    """Load a :func:`capture_run_state` snapshot into a freshly
    constructed tuner (same method, space, runner wiring, and budget as
    the saved run). Returns the tuner."""
    version = state.get("format_version")
    if version != CHECKPOINT_FORMAT_VERSION:
        raise CheckpointVersionError(
            f"checkpoint format version {version!r} is not supported "
            f"(this build reads version {CHECKPOINT_FORMAT_VERSION})"
        )
    method = state.get("method")
    if method != tuner.method_name:
        raise CheckpointError(
            f"checkpoint is for method {method!r}, not {tuner.method_name!r}"
        )
    # Precision is validated only when the checkpoint carries it:
    # version-1 checkpoints written before the dtype/backend stamp are
    # float64-on-NumPy by construction and stay loadable.
    saved_precision = state.get("precision")
    if saved_precision is not None:
        active = _active_precision(tuner)
        if saved_precision != active:
            raise CheckpointError(
                f"checkpoint was written under {saved_precision!r} but this "
                f"run is configured for {active!r}; resuming across "
                "precision/backend changes is not bit-reproducible"
            )
    # Runner first: trial payload rehydration inside the tuner's
    # load_state_dict must not consume the runner's trial-seed stream,
    # and the restored stream/ids must be in place before any trial is
    # rebuilt.
    tuner.runner.load_state_dict(state["runner"])
    tuner.load_state_dict(state["tuner"])
    return tuner


def write_state(path: str, state: Dict) -> str:
    """Atomically persist ``state`` at ``path`` (temp file + rename)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(suffix=".ckpt.tmp", dir=directory)
    try:
        with os.fdopen(fd, "wb") as fh:
            pickle.dump(state, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return path


def save_checkpoint(path: str, tuner) -> str:
    """Capture and atomically persist a tuner's full run state."""
    return write_state(path, capture_run_state(tuner))


def _quarantine_corrupt(path: str, reason: str) -> None:
    """Move a corrupt/truncated checkpoint aside as a collision-safe
    ``<path>.corrupt[.N]`` (mirroring
    :meth:`repro.engine.bank_store.BankStore.get`), so the next launch
    finds no checkpoint and starts fresh instead of tripping over the same
    broken file forever. Each corruption event keeps its own evidence
    file for post-mortems — a repeat never clobbers the previous one.
    """
    from repro.engine.atomicio import quarantine

    target = quarantine(path)
    if target is not None:
        note = f"quarantined as {target}"
    else:
        note = "could not be quarantined"
    warnings.warn(
        f"corrupt checkpoint {path}: {reason}; {note} — a re-launch will "
        "start the run fresh",
        RuntimeWarning,
        stacklevel=3,
    )


def load_checkpoint(path: str) -> Dict:
    """Read and validate a checkpoint file (raises on version mismatch).

    A corrupt or truncated file (unreadable pickle, or a pickle that is
    not a run checkpoint) is quarantined as ``<path>.corrupt`` with a
    warning and raises :class:`CheckpointError` — never a raw ``pickle``
    exception. Version mismatches are NOT quarantined: the file is a
    valid checkpoint from another build, and destroying it would be worse
    than refusing it.
    """
    try:
        with open(path, "rb") as fh:
            state = pickle.load(fh)
    except FileNotFoundError:
        raise
    except Exception as exc:
        _quarantine_corrupt(path, f"unreadable: {exc!r}")
        raise CheckpointError(f"unreadable checkpoint {path!r}: {exc}") from exc
    if not isinstance(state, dict) or "format_version" not in state:
        _quarantine_corrupt(path, "not a run checkpoint")
        raise CheckpointError(f"{path!r} is not a run checkpoint")
    if state["format_version"] != CHECKPOINT_FORMAT_VERSION:
        raise CheckpointVersionError(
            f"checkpoint {path!r} has format version "
            f"{state['format_version']!r}; this build reads version "
            f"{CHECKPOINT_FORMAT_VERSION}"
        )
    return state


def resume_checkpoint(tuner, path: str):
    """Restore ``tuner`` from the checkpoint file at ``path``."""
    return restore_run_state(tuner, load_checkpoint(path))


class RunCheckpointer:
    """Periodic save hook for :meth:`repro.core.tuner.BaseTuner.run`.

    ``every`` throttles saves by observation count: a save is skipped
    while fewer than ``every`` new observations have landed since the last
    write (``force=True`` — used for the final save — always writes).
    Skipping saves never affects results, only how much work a resume
    replays.
    """

    def __init__(self, path: str, every: int = 1):
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.path = str(path)
        self.every = every
        self._last_saved = -1

    def save(self, tuner, force: bool = False) -> bool:
        """Persist the tuner's state; returns whether a write happened."""
        n = len(tuner.observations)
        if not force and self._last_saved >= 0 and n - self._last_saved < self.every:
            return False
        save_checkpoint(self.path, tuner)
        self._last_saved = n
        return True
